package sim

import (
	"strings"
	"testing"

	"wormmesh/internal/routing"
	"wormmesh/internal/topology"
)

// torusParams is the golden scenario re-based onto the torus backend.
func torusParams(workers int) Params {
	p := goldenParams(workers)
	p.Topology = "torus"
	return p
}

// TestTorusSaturatingFaultFree drives every torus-enabled algorithm
// well past the torus's bisection capacity on a fault-free 10×10 torus
// and requires zero recovery kills: the dateline and hop-class
// deadlock-freedom arguments must hold under sustained saturation, not
// just at trickle loads.
func TestTorusSaturatingFaultFree(t *testing.T) {
	torus := topology.NewTorus(10, 10)
	names := routing.TorusAlgorithmNames(torus)
	if len(names) == 0 {
		t.Fatal("no torus-enabled algorithms")
	}
	for _, alg := range names {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			p := DefaultParams()
			p.Topology = "torus"
			p.Algorithm = alg
			p.Rate = 0.05 // 1.6 flits/node/cycle offered vs 0.8 capacity
			p.MessageLength = 32
			p.WarmupCycles = 500
			p.MeasureCycles = 3000
			res, err := Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Delivered == 0 {
				t.Fatal("saturated torus delivered nothing")
			}
			if res.Stats.Killed != 0 {
				t.Errorf("%s on saturated fault-free torus: %d recovery kills (global=%d stall=%d livelock=%d), want 0",
					alg, res.Stats.Killed, res.Stats.KilledGlobal, res.Stats.KilledStall, res.Stats.KilledLivelock)
			}
		})
	}
}

// TestTorusGoldenDeterminism asserts the determinism contract holds on
// the torus backend exactly as on the mesh: bit-identical Stats across
// parallel worker counts and across repeated serial runs.
func TestTorusGoldenDeterminism(t *testing.T) {
	run := func(workers int) Result {
		res, err := Run(torusParams(workers))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	if base.Stats.Delivered == 0 {
		t.Fatal("torus golden scenario delivered nothing")
	}
	for _, workers := range []int{2, 4} {
		if got := run(workers); !statsEqual(base.Stats, got.Stats) {
			t.Errorf("torus workers=%d diverged from workers=1", workers)
		}
	}
	s1, s2 := run(0), run(0)
	if !statsEqual(s1.Stats, s2.Stats) {
		t.Error("torus serial runs with the same seed diverged")
	}
}

// TestTorusFaultedWrapRegion runs a torus with an explicit fault block
// straddling the X wrap edge, exercising the wrapped region, its closed
// f-ring, and BC traversal over wrap links.
func TestTorusFaultedWrapRegion(t *testing.T) {
	torus := topology.NewTorus(10, 10)
	p := DefaultParams()
	p.Topology = "torus"
	p.Algorithm = "Duato"
	p.Rate = 0.004
	p.MessageLength = 32
	p.WarmupCycles = 500
	p.MeasureCycles = 3000
	p.FaultNodes = []topology.NodeID{
		torus.ID(topology.Coord{X: 9, Y: 5}),
		torus.ID(topology.Coord{X: 0, Y: 5}),
	}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regions != 1 {
		t.Fatalf("wrap faults formed %d regions, want 1", res.Regions)
	}
	if res.Stats.Delivered == 0 {
		t.Fatal("faulted torus delivered nothing")
	}
	if res.Stats.Killed != 0 {
		t.Errorf("faulted torus run killed %d messages, want 0", res.Stats.Killed)
	}
}

// TestTorusRejectsMeshOnlyAlgorithms asserts the registry guard
// surfaces through sim.Run with a useful message.
func TestTorusRejectsMeshOnlyAlgorithms(t *testing.T) {
	for _, alg := range []string{"Minimal-Adaptive", "Fully-Adaptive", "Boura-Adaptive", "Boura-FT"} {
		p := torusParams(0)
		p.Algorithm = alg
		if _, err := Run(p); err == nil || !strings.Contains(err.Error(), alg) {
			t.Errorf("%s on torus: err = %v, want rejection naming the algorithm", alg, err)
		}
	}
	// Odd dimensions additionally reject the negative-hop family.
	p := torusParams(0)
	p.Width, p.Height = 9, 9
	p.Algorithm = "NHop"
	if _, err := Run(p); err == nil || !strings.Contains(err.Error(), "even") {
		t.Errorf("NHop on odd torus: err = %v, want even-dimension rejection", err)
	}
}
