package sim

import (
	"testing"
)

// runnerScenarios is a mixed workload exercising every reuse path one
// sweep worker hits: algorithm changes (different fortified wrappers
// over the same model), fault-pattern changes (neighbor-table rebuild),
// load changes (source re-seeding), engine-mode changes (serial ↔
// parallel with pool reuse), and a mesh change (network reallocation).
func runnerScenarios() []Params {
	base := goldenParams(0)
	mk := func(mut func(*Params)) Params {
		p := base
		mut(&p)
		return p
	}
	return []Params{
		base,
		mk(func(p *Params) { p.Algorithm = "Duato-Nbc" }),
		mk(func(p *Params) { p.Algorithm = "Boura-FT"; p.FaultSeed = 7; p.Seed = 99 }),
		mk(func(p *Params) { p.Rate = 0.002 }),
		mk(func(p *Params) { p.EngineWorkers = 2 }),
		mk(func(p *Params) { p.EngineWorkers = 2; p.Algorithm = "Nbc"; p.FaultSeed = 7 }),
		mk(func(p *Params) { p.EngineWorkers = 0; p.Faults = 0 }), // back to serial, fault-free
		mk(func(p *Params) { p.Width = 8; p.Height = 8; p.Faults = 4 }),
		base, // and back to the first scenario: full-circle reuse
	}
}

// TestRunnerMatchesOneShot locks in the Runner reuse invariant: a
// sequence of simulations through ONE Runner — reusing the network via
// Reset, the parallel worker pool, the traffic source, both RNGs and
// the fault/algorithm/pattern caches — produces Stats bit-identical to
// running each Params through the fresh one-shot path.
func TestRunnerMatchesOneShot(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	for i, p := range runnerScenarios() {
		fresh, err := Run(p)
		if err != nil {
			t.Fatalf("scenario %d: one-shot: %v", i, err)
		}
		reused, err := r.Run(p)
		if err != nil {
			t.Fatalf("scenario %d: runner: %v", i, err)
		}
		if fresh.Stats.Delivered == 0 {
			t.Fatalf("scenario %d delivered nothing", i)
		}
		if !statsEqual(fresh.Stats, reused.Stats) {
			t.Errorf("scenario %d (%s workers=%d faults=%d rate=%g): runner diverged from one-shot:\n  fresh:  %+v\n  reused: %+v",
				i, p.Algorithm, p.EngineWorkers, p.Faults, p.Rate, fresh.Stats, reused.Stats)
		}
		if fresh.FaultCount != reused.FaultCount || fresh.RingNodes != reused.RingNodes || fresh.Regions != reused.Regions {
			t.Errorf("scenario %d: fault topology summary diverged", i)
		}
	}
}

// TestRunnerRepeatIdentical asserts that re-running the same Params
// through the same Runner is idempotent — Reset restores the exact
// post-construction state, so back-to-back runs cannot drift.
func TestRunnerRepeatIdentical(t *testing.T) {
	for _, workers := range []int{0, 2} {
		r := NewRunner()
		p := goldenParams(workers)
		a, err := r.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
		if a.Stats.Delivered == 0 {
			t.Fatalf("workers=%d delivered nothing", workers)
		}
		if !statsEqual(a.Stats, b.Stats) {
			t.Errorf("workers=%d: repeat through one Runner diverged:\n  a: %+v\n  b: %+v", workers, a.Stats, b.Stats)
		}
	}
}
