package sim

import (
	"strings"
	"testing"

	"wormmesh/internal/metrics"
	"wormmesh/internal/topology"
)

// newTestSim builds a metrics bridge on a throwaway registry for runs
// that exercise the sampling path.
func newTestSim(t *testing.T) *metrics.Sim {
	t.Helper()
	return metrics.NewSim(metrics.NewRegistry())
}

// TestTelemetryNeutralGolden locks in the per-link telemetry contract:
// counter recording is read-only and RNG-free, so the golden scenario's
// Stats are bit-identical with ChannelTelemetry on or off — serial and
// parallel (workers 1, 2, 4).
func TestTelemetryNeutralGolden(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4} {
		base := goldenRun(t, workers)
		p := goldenParams(workers)
		p.Config = DefaultEngineConfig()
		p.Config.ChannelTelemetry = true
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if !statsEqual(base, res.Stats) {
			t.Errorf("workers=%d: link telemetry changed the run:\n  off: %+v\n  on:  %+v",
				workers, base, res.Stats)
		}
		if res.Links == nil {
			t.Fatalf("workers=%d: telemetry on but Result.Links is nil", workers)
		}
		var flits int64
		for _, f := range res.Links.Flits {
			flits += f
		}
		if flits == 0 {
			t.Errorf("workers=%d: telemetry on but no link flits recorded", workers)
		}
	}
}

// TestTelemetryNeutralRunnerReuse checks the reuse path: one Runner
// alternating telemetry off/on/off over the golden scenario stays
// bit-identical with the one-shot baseline throughout. Toggling
// ChannelTelemetry changes Cfg, so the Runner rebuilds the network —
// the rebuild must be observably transparent too.
func TestTelemetryNeutralRunnerReuse(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	base := goldenRun(t, 0)
	for i, telemetry := range []bool{false, true, false, true} {
		p := goldenParams(0)
		p.Config = DefaultEngineConfig()
		p.Config.ChannelTelemetry = telemetry
		res, err := r.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if !statsEqual(base, res.Stats) {
			t.Errorf("runner pass %d (telemetry=%v) diverged from one-shot golden Stats", i, telemetry)
		}
		if telemetry && res.Links == nil {
			t.Errorf("runner pass %d: telemetry on but Result.Links is nil", i)
		}
		if !telemetry && res.Links != nil {
			t.Errorf("runner pass %d: telemetry off but Result.Links is set", i)
		}
	}
}

// TestTelemetryNeutralMetricsSampling runs the golden scenario with the
// full metrics bridge attached (which samples the live histogram and
// link counters mid-run) and checks Stats stay bit-identical: sampling
// is read-only.
func TestTelemetryNeutralMetricsSampling(t *testing.T) {
	base := goldenRun(t, 0)
	p := goldenParams(0)
	p.Config = DefaultEngineConfig()
	p.Config.ChannelTelemetry = true
	p.Metrics = newTestSim(t)
	p.MetricsInterval = 256
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqual(base, res.Stats) {
		t.Errorf("metrics sampling with telemetry changed the run:\n  off: %+v\n  on:  %+v",
			base, res.Stats)
	}
}

// TestLatencyHistogramWindowReset checks the histogram obeys the
// measurement window: a run with warm-up discards warm-up deliveries,
// and the histogram total equals LatencyCount exactly.
func TestLatencyHistogramWindowReset(t *testing.T) {
	p := goldenParams(0)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.LatencyCount == 0 {
		t.Fatal("golden scenario measured no latencies")
	}
	if got := st.LatencyHist.Total(); got != st.LatencyCount {
		t.Errorf("histogram total %d != LatencyCount %d", got, st.LatencyCount)
	}
	for _, q := range []float64{50, 95, 99} {
		b := st.Percentile(q)
		if b < 0 || b > 2*st.LatencyMax+1 {
			t.Errorf("Percentile(%g) = %d outside (0, 2*max] with max %d", q, b, st.LatencyMax)
		}
	}
	if p50, p99 := st.Percentile(50), st.Percentile(99); p50 > p99 {
		t.Errorf("p50 %d > p99 %d", p50, p99)
	}
}

// TestLatencyAnatomyPartition checks the decomposition table's
// invariant at the Stats level on the golden run: the four disjoint
// component sums partition the total latency sum, and the anatomy
// table renders every component.
func TestLatencyAnatomyPartition(t *testing.T) {
	res, err := Run(goldenParams(0))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if got := st.LatQueueSum + st.LatRouteSum + st.LatBlockedSum + st.LatMovingSum; got != st.LatencySum {
		t.Errorf("component sums %d != LatencySum %d", got, st.LatencySum)
	}
	if st.LatMovingSum == 0 || st.LatRouteSum == 0 {
		t.Errorf("degenerate decomposition: moving=%d route=%d", st.LatMovingSum, st.LatRouteSum)
	}
	var b strings.Builder
	if err := LatencyAnatomy(st).Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"source-queue wait", "moving", "p99 latency", "total (mean latency)"} {
		if !strings.Contains(out, want) {
			t.Errorf("anatomy table missing %q:\n%s", want, out)
		}
	}
}

// TestRingOverlayOnFaultyRun checks the f-ring latency overlay and the
// per-link ring tags against each other on a faulty golden run: rings
// exist, some measured messages traversed them, and the overlay never
// exceeds the total latency.
func TestRingOverlayOnFaultyRun(t *testing.T) {
	p := goldenParams(0)
	p.Config = DefaultEngineConfig()
	p.Config.ChannelTelemetry = true
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.RingEntries == 0 {
		t.Skip("golden fault pattern produced no ring traffic at this load")
	}
	if st.LatRingSum < 0 || st.LatRingSum > st.LatencySum {
		t.Errorf("ring overlay %d outside [0, %d]", st.LatRingSum, st.LatencySum)
	}
	onRing := 0
	for _, tag := range res.Links.OnRing {
		if tag {
			onRing++
		}
	}
	if onRing == 0 {
		t.Error("faulty run has ring entries but no ring-tagged links")
	}
}

// TestLinkViewAndTableFromRun exercises the reporting pipeline end to
// end on a faulty telemetry run: composite views render for every
// metric, the CSV table lists only existing links, and the faulty
// node is marked.
func TestLinkViewAndTableFromRun(t *testing.T) {
	p := goldenParams(0)
	p.Config = DefaultEngineConfig()
	p.Config.ChannelTelemetry = true
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []LinkMetric{LinkFlits, LinkBusy, LinkBlocked} {
		lv, err := res.LinkView(metric)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := lv.Write(&b); err != nil {
			t.Fatalf("%v view: %v", metric, err)
		}
		if !strings.Contains(b.String(), "X") {
			t.Errorf("%v view does not mark the faulty nodes", metric)
		}
	}
	lt, err := res.LinkTable()
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := lt.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(csv.String(), "\n")
	existing := 0
	mesh := res.Faults.Topo
	for id := topology.NodeID(0); int(id) < mesh.NodeCount(); id++ {
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			if res.linkExists(id, d) {
				existing++
			}
		}
	}
	if lines != existing+1 { // header + one row per existing link
		t.Errorf("link CSV has %d lines, want %d (header + %d links)", lines, existing+1, existing)
	}

	// Telemetry-off runs fail loudly instead of reporting nothing.
	plain, err := Run(goldenParams(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.LinkView(LinkFlits); err == nil {
		t.Error("LinkView on a telemetry-off run did not error")
	}
	if _, err := plain.LinkTable(); err == nil {
		t.Error("LinkTable on a telemetry-off run did not error")
	}
	if _, err := plain.RingSplit(LinkBlocked); err == nil {
		t.Error("RingSplit on a telemetry-off run did not error")
	}
}
