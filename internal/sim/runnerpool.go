package sim

import "sync"

// RunnerPool recycles Runners across short-lived borrowers — the serve
// scheduler's worker fleet, request handlers — so a server answering
// thousands of requests builds O(pool) networks, the way a sweep worker
// owning one Runner does for O(workers).
//
// Checkout contract: Get hands the caller exclusive use of a Runner
// (Runners are not concurrency-safe); the caller runs any number of
// simulations on it and MUST either Put it back or Close it. No
// explicit reset step exists or is needed — Runner.Run's reuse path IS
// the reset: re-seeding the RNGs and Reset-ing the network restores the
// exact fresh-construction state, so a pooled Runner's results are
// bit-identical to a new Runner's (the runner golden tests lock this
// in, and TestRunnerPoolBitIdentical covers the pooled path).
//
// The pool retains at most maxIdle returned Runners; extras are Closed
// on Put. Get never blocks: an empty pool constructs a fresh Runner.
type RunnerPool struct {
	mu      sync.Mutex
	idle    []*Runner
	maxIdle int
	closed  bool
}

// NewRunnerPool returns a pool retaining up to maxIdle idle Runners
// (4 when maxIdle <= 0).
func NewRunnerPool(maxIdle int) *RunnerPool {
	if maxIdle <= 0 {
		maxIdle = 4
	}
	return &RunnerPool{maxIdle: maxIdle}
}

// Get checks out a Runner for exclusive use. Return it with Put.
func (p *RunnerPool) Get() *Runner {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		r := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return r
	}
	p.mu.Unlock()
	return NewRunner()
}

// Put returns a Runner to the pool. Runners beyond the idle cap — or
// returned after Close — are Closed instead of retained. The caller
// must not use r afterwards.
func (p *RunnerPool) Put(r *Runner) {
	if r == nil {
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.maxIdle {
		p.mu.Unlock()
		r.Close()
		return
	}
	p.idle = append(p.idle, r)
	p.mu.Unlock()
}

// Idle reports how many Runners are currently parked in the pool.
func (p *RunnerPool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Close releases every idle Runner and marks the pool closed; Runners
// checked out at the time are Closed by their borrowers' Put.
func (p *RunnerPool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, r := range idle {
		r.Close()
	}
}
