package sim

import (
	"testing"

	"wormmesh/internal/core"
)

// TestTelemetryNeutralSampler locks in the WindowSampler's observer
// contract: sampling is read-only and RNG-free, so the golden
// scenario's Stats are bit-identical with a sampler attached or not —
// serial and parallel. (The name keeps it inside the telemetry-
// neutrality CI step's -run TelemetryNeutral filter.)
func TestTelemetryNeutralSampler(t *testing.T) {
	for _, workers := range []int{0, 2} {
		base := goldenRun(t, workers)
		p := goldenParams(workers)
		s := core.NewWindowSampler(256, 8) // tiny ring: eviction must not matter either
		p.Sampler = s
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if !statsEqual(base, res.Stats) {
			t.Errorf("workers=%d: sampler changed the run:\n  off: %+v\n  on:  %+v",
				workers, base, res.Stats)
		}
		total := p.WarmupCycles + p.MeasureCycles
		wantSeq := total/256 + 1 // 11 full windows + the flushed tail
		if total%256 == 0 {
			wantSeq = total / 256
		}
		if s.Seq() != wantSeq {
			t.Errorf("workers=%d: sampler produced %d windows over %d cycles (W=256), want %d",
				workers, s.Seq(), total, wantSeq)
		}
		last, ok := s.Latest()
		if !ok || last.End != total {
			t.Errorf("workers=%d: last window ends at %d, want %d", workers, last.End, total)
		}
	}
}

// TestTelemetryNeutralSamplerWithLinks runs the golden scenario with
// both link telemetry and a sampler attached: still bit-identical, and
// the snapshots carry per-link busy rows.
func TestTelemetryNeutralSamplerWithLinks(t *testing.T) {
	base := goldenRun(t, 0)
	p := goldenParams(0)
	p.Config = DefaultEngineConfig()
	p.Config.ChannelTelemetry = true
	s := core.NewWindowSampler(256, 64)
	p.Sampler = s
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqual(base, res.Stats) {
		t.Errorf("sampler+telemetry changed the run:\n  off: %+v\n  on:  %+v", base, res.Stats)
	}
	busy := 0
	for _, w := range s.Since(0) {
		for _, b := range w.LinkBusy {
			if b > 0 {
				busy++
			}
		}
	}
	if busy == 0 {
		t.Error("no busy link fractions recorded across the whole run")
	}
}

// TestSamplerRunnerReuse checks the reuse path: a Runner alternating
// sampler on/off stays bit-identical with the one-shot baseline, and
// Start resets the ring between runs.
func TestSamplerRunnerReuse(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	base := goldenRun(t, 0)
	s := core.NewWindowSampler(512, 128)
	var prevSeq int64
	for i, attach := range []bool{true, false, true} {
		p := goldenParams(0)
		if attach {
			p.Sampler = s
		}
		res, err := r.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if !statsEqual(base, res.Stats) {
			t.Errorf("run %d (sampler=%v) diverged from baseline", i, attach)
		}
		if attach {
			if prevSeq != 0 && s.Seq() != prevSeq {
				t.Errorf("run %d: Seq %d differs from first attached run's %d (Start should reset)",
					i, s.Seq(), prevSeq)
			}
			prevSeq = s.Seq()
		}
	}
}

// steadyParams is the golden scenario with batch width shrunk so the
// detectors have enough batches to work with inside a test-sized run.
func steadyParams() Params {
	p := goldenParams(0)
	p.WarmupCycles = 4000 // cap for detection
	p.MeasureCycles = 4000
	p.SteadyWindow = 100
	return p
}

// TestMSERWarmupDetects runs the mid-load golden scenario with MSER
// warm-up detection: the detected truncation must land strictly before
// the cap (this load stabilizes quickly) and be a whole number of
// batches.
func TestMSERWarmupDetects(t *testing.T) {
	p := steadyParams()
	p.WarmupMode = "mser"
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	eff := res.Stats.EffectiveWarmup
	if eff <= 0 || eff >= p.WarmupCycles {
		t.Fatalf("EffectiveWarmup = %d, want detection inside (0, %d)", eff, p.WarmupCycles)
	}
	if eff%p.SteadyWindow != 0 {
		t.Errorf("EffectiveWarmup %d is not a multiple of the %d-cycle batch", eff, p.SteadyWindow)
	}
	if res.Stats.Cycles != p.MeasureCycles {
		t.Errorf("measurement ran %d cycles, want the full %d", res.Stats.Cycles, p.MeasureCycles)
	}
}

// TestMSEREquivalentToFixed locks in the bit-exactness argument for
// adaptive warm-up: because detection is read-only and RNG-free, an
// "mser" run must be Stats-identical to a fixed run whose WarmupCycles
// equals the detected EffectiveWarmup.
func TestMSEREquivalentToFixed(t *testing.T) {
	p := steadyParams()
	p.WarmupMode = "mser"
	adaptive, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	q := steadyParams()
	q.WarmupMode = ""
	q.SteadyWindow = 0
	q.WarmupCycles = adaptive.Stats.EffectiveWarmup
	fixed, err := Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqual(adaptive.Stats, fixed.Stats) {
		t.Errorf("mser run differs from fixed run at the detected cut %d:\n  mser:  %+v\n  fixed: %+v",
			adaptive.Stats.EffectiveWarmup, adaptive.Stats, fixed.Stats)
	}
}

// TestStopRelPrecision runs the stopping rule at a loose target: the
// mid-load scenario's batch means are tight, so measurement must stop
// well before the cap with the achieved half-width reported.
func TestStopRelPrecision(t *testing.T) {
	p := steadyParams()
	p.MeasureCycles = 50000 // generous cap the rule should beat
	p.StopRelPrecision = 0.2
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles >= 50000 {
		t.Errorf("measurement ran to the %d-cycle cap; the ±20%% rule should stop earlier", res.Stats.Cycles)
	}
	if res.Stats.Cycles%p.SteadyWindow != 0 {
		t.Errorf("stopped at %d cycles, not a batch boundary", res.Stats.Cycles)
	}
	half := res.Stats.LatencyCIHalf
	if half <= 0 {
		t.Fatalf("LatencyCIHalf = %v, want > 0", half)
	}
	if mean := res.Stats.AvgLatency(); half > 0.25*mean {
		// The rule compares against the batch-means mean, which can
		// differ slightly from the overall mean; allow a little slack.
		t.Errorf("stopped with half-width %.2f at mean %.2f — precision target missed", half, mean)
	}
	// Determinism: the stop decision depends only on the deterministic
	// counter stream, so a second run reproduces it exactly.
	res2, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqual(res.Stats, res2.Stats) {
		t.Error("stop-rule run is not reproducible")
	}
}

// TestWarmupModeValidation rejects unknown modes.
func TestWarmupModeValidation(t *testing.T) {
	p := goldenParams(0)
	p.WarmupMode = "schruben"
	if _, err := Run(p); err == nil {
		t.Fatal("unknown WarmupMode accepted")
	}
}

// TestMSERTruncation unit-tests the truncation statistic on shaped
// series: a step transient truncates at the step, a flat series keeps
// everything.
func TestMSERTruncation(t *testing.T) {
	series := make([]float64, 40)
	for i := range series {
		if i < 12 {
			series[i] = 100 - float64(i)*5 // decaying transient
		} else {
			series[i] = 40 + float64(i%3) // steady with small wobble
		}
	}
	d, ok := mserTruncation(series)
	if !ok {
		t.Fatal("no truncation point on a step series")
	}
	if d < 8 || d > 16 {
		t.Errorf("truncation at %d, want near the transient's end (12)", d)
	}
	flat := make([]float64, 30)
	for i := range flat {
		flat[i] = 7
	}
	d, ok = mserTruncation(flat)
	if !ok || d != 0 {
		t.Errorf("flat series truncates at %d (ok=%v), want 0", d, ok)
	}
	if _, ok := mserTruncation(make([]float64, 3)); ok {
		t.Error("a 3-point series should be too short to truncate")
	}
}
