package sim

import (
	"reflect"
	"testing"

	"wormmesh/internal/core"
)

// goldenParams is one mid-load faulty-mesh scenario used to lock in the
// engine's determinism contract: the splitmix64 request–grant
// arbitration must yield bit-identical Stats for any worker count, and
// both engines must be exactly reproducible for a fixed seed. The
// memory-layout refactors (dense ChannelID grant table, flit windows,
// message arena) are required to keep this test passing unchanged.
func goldenParams(workers int) Params {
	p := DefaultParams()
	p.Algorithm = "Duato"
	p.Pattern = "uniform"
	p.Rate = 0.004 // mid load: contention without saturation
	p.MessageLength = 32
	p.Faults = 6
	p.FaultSeed = 42
	p.Seed = 1234
	p.WarmupCycles = 500
	p.MeasureCycles = 2500
	p.EngineWorkers = workers
	return p
}

func goldenRun(t *testing.T, workers int) core.Stats {
	t.Helper()
	res, err := Run(goldenParams(workers))
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats
}

// statsEqual compares every exported field, including the per-VC and
// per-node slices — "bit-identical" means the whole Stats value.
func statsEqual(a, b core.Stats) bool { return reflect.DeepEqual(a, b) }

// TestGoldenDeterminismAcrossWorkers asserts Stats equality across
// workers ∈ {1, 2, 4} for the golden scenario.
func TestGoldenDeterminismAcrossWorkers(t *testing.T) {
	base := goldenRun(t, 1)
	if base.Delivered == 0 {
		t.Fatal("golden scenario delivered nothing")
	}
	if base.LatencyCount == 0 {
		t.Fatal("golden scenario measured no latencies")
	}
	for _, workers := range []int{2, 4} {
		got := goldenRun(t, workers)
		if !statsEqual(base, got) {
			t.Errorf("workers=%d diverged from workers=1:\n  base: %+v\n  got:  %+v", workers, base, got)
		}
	}
}

// TestGoldenDeterminismAcrossRuns asserts that two runs with the same
// seed are bit-identical, for the serial engine and for the parallel
// engine.
func TestGoldenDeterminismAcrossRuns(t *testing.T) {
	for _, workers := range []int{0, 2} {
		a := goldenRun(t, workers)
		b := goldenRun(t, workers)
		if a.Delivered == 0 {
			t.Fatalf("workers=%d delivered nothing", workers)
		}
		if !statsEqual(a, b) {
			t.Errorf("workers=%d: same seed diverged across runs:\n  a: %+v\n  b: %+v", workers, a, b)
		}
	}
}
