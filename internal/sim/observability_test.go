package sim

import (
	"bytes"
	"strings"
	"testing"
)

// TestFlightRecorderGoldenNeutral locks in the observation contract:
// recording is read-only and RNG-free, so the golden scenario's Stats
// are bit-identical with the flight recorder on or off — serial and
// parallel.
func TestFlightRecorderGoldenNeutral(t *testing.T) {
	for _, workers := range []int{0, 2} {
		base := goldenRun(t, workers)
		p := goldenParams(workers)
		p.FlightRecorderEvents = 512
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if !statsEqual(base, res.Stats) {
			t.Errorf("workers=%d: flight recorder changed the run:\n  off: %+v\n  on:  %+v",
				workers, base, res.Stats)
		}
	}
}

// forcedDeadlockParams is a scenario engineered to actually deadlock:
// Minimal-Adaptive with the bare minimum of virtual channels and no
// supervision, saturating load, and a hair-trigger watchdog. The
// paper's point about unrestricted adaptivity is exactly that this
// wedges.
func forcedDeadlockParams() Params {
	p := DefaultParams()
	p.Algorithm = "Minimal-Adaptive"
	p.Pattern = "uniform"
	p.Width, p.Height = 6, 6
	p.Rate = 0.05 // saturating for 8-flit messages
	p.MessageLength = 8
	p.Seed = 3
	p.WarmupCycles = 0
	p.MeasureCycles = 6000
	p.Config = DefaultEngineConfig()
	p.Config.NumVCs = 5 // 1 adaptive VC + the 4 reserved ring channels
	p.Config.DeadlockCycles = 300
	p.Config.MessageStallCycles = 0 // global watchdog only
	return p
}

// TestForcedDeadlockPostmortem runs the wedge-prone scenario with a
// post-mortem writer installed and checks the whole failure path: the
// watchdog fires, the report names a genuine wait cycle with fully
// blocked messages, and the flight recorder (auto-installed by the
// writer) supplies the recent event tail.
func TestForcedDeadlockPostmortem(t *testing.T) {
	p := forcedDeadlockParams()
	var pmBuf bytes.Buffer
	p.PostmortemWriter = &pmBuf
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DeadlockEvents == 0 {
		t.Fatal("scenario did not deadlock — watchdog never fired")
	}
	if res.Stats.KilledGlobal == 0 {
		t.Error("global watchdog fired but KilledGlobal is zero")
	}
	out := pmBuf.String()
	for _, want := range []string{
		"=== deadlock post-mortem: trigger=watchdog",
		"recovery victim: msg#",
		"wait cycle",
		"FULLY BLOCKED",
		"held by msg#",
		"engine events",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-mortem missing %q; got:\n%s", want, clip(out, 2000))
		}
	}
}

// TestPostmortemGoldenNeutral re-runs the deadlock scenario without
// any observer and checks the Stats are bit-identical: diagnosis on
// the watchdog path mutates nothing and draws nothing from the RNG.
func TestPostmortemGoldenNeutral(t *testing.T) {
	p := forcedDeadlockParams()
	plain, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.DeadlockEvents == 0 {
		t.Fatal("scenario did not deadlock")
	}
	observed := p
	var pmBuf bytes.Buffer
	observed.PostmortemWriter = &pmBuf
	observed.FlightRecorderEvents = 256
	res, err := Run(observed)
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqual(plain.Stats, res.Stats) {
		t.Errorf("post-mortem observation changed the run:\n  plain:    %+v\n  observed: %+v",
			plain.Stats, res.Stats)
	}
	if pmBuf.Len() == 0 {
		t.Error("no post-mortem written despite watchdog firings")
	}
}

// TestRunnerFlightRecorderNeutral checks the reuse path too: a Runner
// executing the golden scenario with observation enabled between two
// plain runs stays bit-identical throughout.
func TestRunnerFlightRecorderNeutral(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	base := goldenRun(t, 0)
	p := goldenParams(0)
	for i, variant := range []func(*Params){
		func(p *Params) {},
		func(p *Params) { p.FlightRecorderEvents = 512 },
		func(p *Params) {},
	} {
		q := p
		variant(&q)
		res, err := r.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if !statsEqual(base, res.Stats) {
			t.Errorf("runner pass %d diverged from one-shot golden Stats", i)
		}
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// TestStatsKillCauseSplit checks the per-cause kill accounting sums to
// the total on a run where the global watchdog is the only recovery
// mechanism.
func TestStatsKillCauseSplit(t *testing.T) {
	p := forcedDeadlockParams()
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Killed == 0 {
		t.Fatal("no kills in the forced-deadlock scenario")
	}
	if st.KilledGlobal+st.KilledStall+st.KilledLivelock != st.Killed {
		t.Errorf("kill causes %d+%d+%d do not sum to Killed=%d",
			st.KilledGlobal, st.KilledStall, st.KilledLivelock, st.Killed)
	}
	if st.KilledStall != 0 {
		t.Errorf("KilledStall = %d with stall recovery disabled", st.KilledStall)
	}
}
