package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/routing"
	"wormmesh/internal/topology"
	"wormmesh/internal/traffic"
)

// Runner executes simulations back to back while reusing every
// expensive artifact a single Run would rebuild from scratch: the
// network (routers, VC arrays, neighbor table, message arena, parallel
// worker pool), the traffic source, both RNGs, and — keyed caches —
// fault models, fortified routing algorithms with their per-worker
// clones, and traffic patterns. A 1,000-point sweep through one Runner
// allocates O(1) networks instead of O(points).
//
// Reuse is observably transparent: a Runner produces bit-identical
// Results to the one-shot Run/RunWithFaults for the same Params (the
// invariant locked in by internal/sim's runner golden tests). That
// holds because core.Network.Reset restores the exact post-construction
// state, traffic.Source.Reset replays NewSource's RNG draw order, and
// math/rand re-seeding reproduces rand.New(rand.NewSource(seed))'s
// stream.
//
// Caches are keyed by (mesh, fault count, fault seed) and (algorithm,
// fault model, VC count), so memory grows with the number of DISTINCT
// experimental cells, not with the number of runs; a Runner is meant to
// be owned by one sweep worker and discarded with Close when the sweep
// ends. A Runner is not safe for concurrent use — give each goroutine
// its own (see internal/sweep).
type Runner struct {
	net     *core.Network
	src     *traffic.Source
	engRng  *rand.Rand
	trafRng *rand.Rand

	faults   map[faultCacheKey]*fault.Model
	explicit map[string]*fault.Model // FaultNodes-specified models
	algs     map[algCacheKey]*algEntry
	patterns map[patternCacheKey]traffic.Pattern
}

type faultCacheKey struct {
	topology      string
	width, height int
	faults        int
	seed          int64
}

// algCacheKey identifies one fortified algorithm: the fault model is
// part of the identity because fortification bakes the model's rings
// and memo tables into the instance. Models come from the Runner's own
// cache (or the caller), so pointer identity is the right notion.
type algCacheKey struct {
	name   string
	model  *fault.Model
	numVCs int
}

// algEntry holds the network's main algorithm instance plus the
// per-worker clones parallel mode needs; the clone list grows to the
// largest worker count requested so far.
type algEntry struct {
	main   core.Algorithm
	clones []core.Algorithm
}

type patternCacheKey struct {
	name  string
	model *fault.Model
}

// NewRunner returns an empty Runner; resources materialize on first
// use.
func NewRunner() *Runner { return &Runner{} }

// Close releases the resources the Runner holds beyond its own memory
// (today: the reused network's parallel worker pool). The Runner must
// not be used after Close.
func (r *Runner) Close() {
	if r.net != nil {
		r.net.Close()
		r.net = nil
	}
}

// Run executes one simulation, reusing the Runner's cached state.
func (r *Runner) Run(p Params) (Result, error) {
	if p.Width == 0 || p.Height == 0 {
		return Result{}, fmt.Errorf("sim: mesh dimensions not set")
	}
	f, err := r.buildFaults(p)
	if err != nil {
		return Result{}, err
	}
	return r.RunWithFaults(p, f)
}

// buildFaults is BuildFaults through the Runner's model cache. Models
// are immutable, so sharing one instance across runs (and exposing it
// in Result.Faults) is safe.
func (r *Runner) buildFaults(p Params) (*fault.Model, error) {
	if p.FaultNodes != nil {
		topo, err := topology.Make(p.Topology, p.Width, p.Height)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		key := fmt.Sprintf("%s:%dx%d:%v", topo.Kind(), p.Width, p.Height, p.FaultNodes)
		if f, ok := r.explicit[key]; ok {
			return f, nil
		}
		f, err := fault.New(topo, p.FaultNodes)
		if err != nil {
			return nil, err
		}
		if r.explicit == nil {
			r.explicit = map[string]*fault.Model{}
		}
		r.explicit[key] = f
		return f, nil
	}
	kind := p.Topology
	if kind == "" {
		kind = "mesh" // Make's default; normalized so "" and "mesh" share a cache entry
	}
	key := faultCacheKey{topology: kind, width: p.Width, height: p.Height, faults: p.Faults, seed: p.FaultSeed}
	if p.Faults == 0 {
		key.seed = 0 // seed is irrelevant for the fault-free model
	}
	if f, ok := r.faults[key]; ok {
		return f, nil
	}
	f, err := BuildFaults(p)
	if err != nil {
		return nil, err
	}
	if r.faults == nil {
		r.faults = map[faultCacheKey]*fault.Model{}
	}
	r.faults[key] = f
	return f, nil
}

// algorithms returns the cached fortified algorithm for (name, f,
// numVCs) plus `workers` per-worker clones, constructing whatever is
// missing.
func (r *Runner) algorithms(name string, f *fault.Model, numVCs, workers int) (core.Algorithm, []core.Algorithm, error) {
	key := algCacheKey{name: name, model: f, numVCs: numVCs}
	e := r.algs[key]
	if e == nil {
		a, err := routing.New(name, f, numVCs)
		if err != nil {
			return nil, nil, err
		}
		e = &algEntry{main: a}
		if r.algs == nil {
			r.algs = map[algCacheKey]*algEntry{}
		}
		r.algs[key] = e
	}
	for len(e.clones) < workers {
		c, err := routing.New(name, f, numVCs)
		if err != nil {
			return nil, nil, err
		}
		e.clones = append(e.clones, c)
	}
	return e.main, e.clones[:workers], nil
}

// pattern returns the cached traffic pattern for (name, f).
func (r *Runner) pattern(name string, f *fault.Model) (traffic.Pattern, error) {
	key := patternCacheKey{name: name, model: f}
	if p, ok := r.patterns[key]; ok {
		return p, nil
	}
	p, err := traffic.NewPattern(name, f)
	if err != nil {
		return nil, err
	}
	if r.patterns == nil {
		r.patterns = map[patternCacheKey]traffic.Pattern{}
	}
	r.patterns[key] = p
	return p, nil
}

// RunWithFaults executes one simulation over a pre-built fault model,
// reusing the Runner's network, source and caches. The RNG interaction
// order deliberately mirrors the one-shot path — seed engine RNG, build
// or Reset the network (no draws), EnableParallel (one draw in parallel
// mode), seed traffic RNG, build or Reset the source (one ExpFloat64
// per healthy node) — so results are bit-identical to RunWithFaults.
func (r *Runner) RunWithFaults(p Params, f *fault.Model) (Result, error) {
	start := time.Now()
	mesh := f.Topo
	cfg := p.Config
	if cfg.NumVCs == 0 {
		cfg = DefaultEngineConfig()
	}
	if cfg.MaxHops == 0 {
		// Livelock guard: far above any legitimate detour.
		cfg.MaxHops = int32(16 * mesh.Diameter())
	}
	if cfg.StallScanInterval <= 0 {
		// Mirror NewNetwork's normalization BEFORE the reuse comparison
		// below, so a hand-built Config with the zero value still matches
		// the stored (normalized) Cfg and keeps the network reusable.
		cfg.StallScanInterval = 1024
	}
	alg, clones, err := r.algorithms(p.Algorithm, f, cfg.NumVCs, p.EngineWorkers)
	if err != nil {
		return Result{}, err
	}
	if r.engRng == nil {
		r.engRng = rand.New(rand.NewSource(p.Seed))
		r.trafRng = rand.New(rand.NewSource(p.Seed + 0x9e3779b9))
	} else {
		// Re-seeding restores the exact state rand.New(rand.NewSource)
		// would build, so the reused Rand replays the fresh stream.
		r.engRng.Seed(p.Seed)
		r.trafRng.Seed(p.Seed + 0x9e3779b9)
	}
	if r.net != nil && r.net.Topo == mesh && r.net.Cfg == cfg {
		if err := r.net.Reset(f, alg, r.engRng); err != nil {
			return Result{}, err
		}
	} else {
		if r.net != nil {
			r.net.Close()
		}
		net, err := core.NewNetwork(mesh, f, alg, cfg, r.engRng)
		if err != nil {
			return Result{}, err
		}
		r.net = net
	}
	net := r.net
	if p.EngineWorkers >= 1 {
		if err := net.EnableParallel(p.EngineWorkers, clones); err != nil {
			return Result{}, err
		}
	} else {
		net.DisableParallel()
	}
	var recorder *core.Recorder
	if p.TraceWriter != nil {
		recorder = core.NewRecorder(p.TraceWriter)
		recorder.IncludeFlits = p.TraceFlits
		net.SetTracer(recorder)
	}
	// Observability. Recording and diagnosis are strictly read-only
	// (no engine mutation, no RNG draws), so none of this changes the
	// run's statistics — the flightrec golden test locks that in.
	if p.FlightRecorder != nil {
		p.FlightRecorder.Reset()
		net.SetFlightRecorder(p.FlightRecorder)
	} else if p.FlightRecorderEvents > 0 {
		net.SetFlightRecorder(core.NewFlightRecorder(p.FlightRecorderEvents))
	} else if p.PostmortemWriter != nil {
		net.SetFlightRecorder(core.NewFlightRecorder(0)) // default capacity
	}
	var pmErr error
	if p.PostmortemWriter != nil {
		w := p.PostmortemWriter
		net.SetPostmortemHook(func(pm *core.Postmortem) {
			if err := pm.Render(w); err != nil && pmErr == nil {
				pmErr = err
			}
		})
	}
	met := p.Metrics
	metricsInterval := p.MetricsInterval
	if metricsInterval <= 0 {
		metricsInterval = 1024
	}
	if met != nil {
		met.RunStarted()
	}
	pat, err := r.pattern(p.Pattern, f)
	if err != nil {
		return Result{}, err
	}
	if r.src == nil {
		src, err := traffic.NewSource(f, pat, p.Rate, p.MessageLength, r.trafRng)
		if err != nil {
			return Result{}, err
		}
		r.src = src
	} else if err := r.src.Reset(f, pat, p.Rate, p.MessageLength, r.trafRng); err != nil {
		return Result{}, err
	}
	src := r.src
	// Sustained-load runs recycle completed messages through the
	// network's arena: steady-state cycles then allocate nothing.
	src.Alloc = net.AcquireMessage

	switch p.WarmupMode {
	case "", "fixed", "mser":
	default:
		return Result{}, fmt.Errorf("sim: unknown WarmupMode %q (want \"\", \"fixed\" or \"mser\")", p.WarmupMode)
	}
	steadyWin := p.SteadyWindow
	if steadyWin <= 0 {
		steadyWin = DefaultSteadyWindow
	}
	sampler := p.Sampler
	if sampler != nil {
		sampler.Start(net, p.WarmupCycles+p.MeasureCycles)
	}
	// The loop runs in two phases — warm-up, then measurement behind a
	// ResetStats cut — with per-cycle work identical to the historical
	// single loop, so the fixed path stays bit-exact. The steady-state
	// detectors only observe live counters (read-only, RNG-free) and
	// only ever SHORTEN a phase, so an adaptive run replays the exact
	// trajectory of a fixed run of the resulting length.
	var windows *windowCollector
	cycle := int64(0)
	step := func() {
		src.Tick(cycle, net.Offer)
		net.Step()
		if sampler != nil {
			sampler.Tick(net)
		}
		if windows != nil {
			windows.tick()
		}
		if met != nil && cycle%metricsInterval == 0 {
			met.Sample(net)
		}
		cycle++
	}
	var det *warmupDetector
	if p.WarmupMode == "mser" && p.WarmupCycles > 0 && p.MeasureCycles > 0 {
		det = newWarmupDetector(net, steadyWin)
	}
	for cycle < p.WarmupCycles {
		step()
		if det != nil && det.observe(net) {
			break
		}
	}
	effWarmup := cycle
	var stopper *ciStopper
	if p.MeasureCycles > 0 {
		net.ResetStats()
		if p.WindowCycles > 0 {
			windows = newWindowCollector(net, p.WindowCycles)
		}
		if p.StopRelPrecision > 0 {
			stopper = newCIStopper(net, steadyWin, p.StopRelPrecision)
		}
		for end := cycle + p.MeasureCycles; cycle < end; {
			step()
			if stopper != nil && stopper.observe(net) {
				break
			}
		}
	}
	if sampler != nil {
		sampler.Flush(net)
	}
	if met != nil {
		met.Sample(net)
		met.RunFinished()
	}

	res := Result{
		Params:           p,
		Faults:           f,
		Stats:            net.Snapshot(),
		FaultCount:       f.FaultCount(),
		SeedFaults:       f.SeedCount(),
		Regions:          len(f.Regions()),
		Elapsed:          time.Since(start),
		UndeliveredAtEnd: net.InFlight(),
		Links:            net.LinkSnapshot(),
	}
	if p.MeasureCycles > 0 {
		res.Stats.EffectiveWarmup = effWarmup
	}
	if stopper != nil && !math.IsNaN(stopper.half) {
		res.Stats.LatencyCIHalf = stopper.half
	}
	if windows != nil {
		res.Windows = windows.windows
	}
	if recorder != nil {
		if err := recorder.Close(); err != nil {
			return res, fmt.Errorf("sim: trace: %w", err)
		}
	}
	if pmErr != nil {
		return res, fmt.Errorf("sim: postmortem: %w", pmErr)
	}
	for id := topology.NodeID(0); int(id) < mesh.NodeCount(); id++ {
		if !f.IsFaulty(id) && f.OnAnyRing(id) {
			res.RingNodes++
		}
	}
	return res, nil
}
