// Link-telemetry reporting: composite link views, per-link CSV tables,
// the latency-anatomy breakdown, and the on-/off-ring congestion split
// the hotspot study aggregates. Everything here is derived read-only
// from a Result.
package sim

import (
	"fmt"
	"math"

	"wormmesh/internal/core"
	"wormmesh/internal/report"
	"wormmesh/internal/topology"
)

// LinkMetric selects which per-link counter a view or table renders.
type LinkMetric int

const (
	// LinkFlits is forwarded flits per cycle (link utilization).
	LinkFlits LinkMetric = iota
	// LinkBusy is the fraction of cycles the link had a would-be sender.
	LinkBusy
	// LinkBlocked is the fraction of cycles the link was busy but
	// forwarded nothing (credit exhaustion or switch contention).
	LinkBlocked
)

// ParseLinkMetric maps a flag value to a LinkMetric.
func ParseLinkMetric(s string) (LinkMetric, error) {
	switch s {
	case "flits":
		return LinkFlits, nil
	case "busy":
		return LinkBusy, nil
	case "blocked":
		return LinkBlocked, nil
	}
	return 0, fmt.Errorf("sim: unknown link metric %q (want flits|busy|blocked)", s)
}

func (m LinkMetric) String() string {
	switch m {
	case LinkFlits:
		return "flits"
	case LinkBusy:
		return "busy"
	case LinkBlocked:
		return "blocked"
	}
	return fmt.Sprintf("LinkMetric(%d)", int(m))
}

// counter returns the metric's raw counter row from ls.
func (m LinkMetric) counter(ls *core.LinkStats) []int64 {
	switch m {
	case LinkBusy:
		return ls.Busy
	case LinkBlocked:
		return ls.Blocked
	}
	return ls.Flits
}

// linkExists reports whether node id has a physical link in direction d:
// the neighbor exists and both endpoints are healthy.
func (r Result) linkExists(id topology.NodeID, d topology.Direction) bool {
	if r.Faults.IsFaulty(id) {
		return false
	}
	nb := r.Faults.Topo.NeighborID(id, d)
	return nb != topology.Invalid && !r.Faults.IsFaulty(nb)
}

// LinkView builds the four-direction composite congestion map for one
// metric, normalized per measured cycle. Nonexistent links (mesh edge
// or faulty endpoint) are NaN and render blank; faulty nodes are marked
// 'X' and f-ring nodes 'o'. It returns an error when the run collected
// no link telemetry (Config.ChannelTelemetry off).
func (r Result) LinkView(metric LinkMetric) (*report.LinkView, error) {
	ls := r.Links
	if ls == nil {
		return nil, fmt.Errorf("sim: no link telemetry collected (set Config.ChannelTelemetry)")
	}
	mesh := r.Faults.Topo
	n := mesh.NodeCount()
	cycles := float64(r.Stats.Cycles)
	if cycles == 0 {
		cycles = 1
	}
	raw := metric.counter(ls)
	wraps := mesh.Kind() == "torus"
	lv := &report.LinkView{
		Title:    fmt.Sprintf("per-link %s map (%s/cycle; X = faulty, o = f-ring node):", metric, metric),
		Width:    mesh.Width(),
		Height:   mesh.Height(),
		NodeMark: make([]byte, n),
		WrapX:    wraps,
		WrapY:    wraps,
		Legend:   true,
	}
	for d := 0; d < topology.NumDirs; d++ {
		lv.Dir[d] = make([]float64, n)
	}
	for id := topology.NodeID(0); int(id) < n; id++ {
		switch {
		case r.Faults.IsFaulty(id):
			lv.NodeMark[id] = 'X'
		case r.Faults.OnAnyRing(id):
			lv.NodeMark[id] = 'o'
		}
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			if !r.linkExists(id, d) {
				lv.Dir[d][id] = math.NaN()
				continue
			}
			lv.Dir[d][id] = float64(raw[core.LinkID(id, d)]) / cycles
		}
	}
	return lv, nil
}

// LinkTable builds the per-link CSV table: one row per existing
// directional link with all three counters and the f-ring tag.
func (r Result) LinkTable() (*report.Table, error) {
	ls := r.Links
	if ls == nil {
		return nil, fmt.Errorf("sim: no link telemetry collected (set Config.ChannelTelemetry)")
	}
	mesh := r.Faults.Topo
	t := report.NewTable("node", "x", "y", "dir", "flits", "busy_cycles", "blocked_cycles", "on_ring")
	for id := topology.NodeID(0); int(id) < mesh.NodeCount(); id++ {
		c := mesh.CoordOf(id)
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			if !r.linkExists(id, d) {
				continue
			}
			li := core.LinkID(id, d)
			ring := 0
			if ls.OnRing[li] {
				ring = 1
			}
			t.AddRow(int(id), c.X, c.Y, d.String(), ls.Flits[li], ls.Busy[li], ls.Blocked[li], ring)
		}
	}
	return t, nil
}

// RingSplit aggregates one per-link counter into on-ring and off-ring
// means (per existing link), the measure the hotspot study reports.
type RingSplit struct {
	OnRingLinks  int
	OffRingLinks int
	OnRingMean   float64 // mean counter value over on-ring links
	OffRingMean  float64 // mean counter value over off-ring links
}

// Ratio returns OnRingMean/OffRingMean, or NaN when either side is
// empty or the off-ring mean is zero.
func (s RingSplit) Ratio() float64 {
	if s.OnRingLinks == 0 || s.OffRingLinks == 0 || s.OffRingMean == 0 {
		return math.NaN()
	}
	return s.OnRingMean / s.OffRingMean
}

// RingSplit computes the on-/off-ring mean of one link metric over the
// run's existing links (raw counter units, not normalized per cycle —
// ratios are scale-free).
func (r Result) RingSplit(metric LinkMetric) (RingSplit, error) {
	ls := r.Links
	if ls == nil {
		return RingSplit{}, fmt.Errorf("sim: no link telemetry collected (set Config.ChannelTelemetry)")
	}
	raw := metric.counter(ls)
	mesh := r.Faults.Topo
	var s RingSplit
	var onSum, offSum int64
	for id := topology.NodeID(0); int(id) < mesh.NodeCount(); id++ {
		for d := topology.Direction(0); d < topology.NumDirs; d++ {
			if !r.linkExists(id, d) {
				continue
			}
			li := core.LinkID(id, d)
			if ls.OnRing[li] {
				s.OnRingLinks++
				onSum += raw[li]
			} else {
				s.OffRingLinks++
				offSum += raw[li]
			}
		}
	}
	if s.OnRingLinks > 0 {
		s.OnRingMean = float64(onSum) / float64(s.OnRingLinks)
	}
	if s.OffRingLinks > 0 {
		s.OffRingMean = float64(offSum) / float64(s.OffRingLinks)
	}
	return s, nil
}

// LatencyAnatomy renders the latency decomposition of one run: the mean
// cycles per component (source-queue wait, routing wait, blocked,
// moving, plus the f-ring overlay), each component's share of the total,
// and the histogram percentiles. The four disjoint components sum to
// the mean latency exactly (the engine's partition invariant).
func LatencyAnatomy(st core.Stats) *report.Table {
	t := report.NewTable("component", "mean_cycles", "share%")
	n := float64(st.LatencyCount)
	share := func(sum int64) any {
		if st.LatencySum == 0 {
			return math.NaN()
		}
		return 100 * float64(sum) / float64(st.LatencySum)
	}
	mean := func(sum int64) any {
		if n == 0 {
			return math.NaN()
		}
		return float64(sum) / n
	}
	t.AddRow("source-queue wait", mean(st.LatQueueSum), share(st.LatQueueSum))
	t.AddRow("routing (VC alloc) wait", mean(st.LatRouteSum), share(st.LatRouteSum))
	t.AddRow("blocked (credit/switch)", mean(st.LatBlockedSum), share(st.LatBlockedSum))
	t.AddRow("moving", mean(st.LatMovingSum), share(st.LatMovingSum))
	t.AddRow("total (mean latency)", st.AvgLatency(), share(st.LatencySum))
	t.AddRow("f-ring traversal (overlay)", mean(st.LatRingSum), share(st.LatRingSum))
	t.AddRow("p50 latency (<=)", st.Percentile(50), "")
	t.AddRow("p95 latency (<=)", st.Percentile(95), "")
	t.AddRow("p99 latency (<=)", st.Percentile(99), "")
	t.AddRow("max latency", st.LatencyMax, "")
	return t
}
