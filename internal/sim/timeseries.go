package sim

import (
	"fmt"

	"wormmesh/internal/core"
)

// Window is one fixed-length slice of a simulation's measurement
// phase, used to watch metrics evolve over time (stability checks,
// saturation onset, post-warm-up drift).
type Window struct {
	Start, End int64 // cycle range [Start, End)
	Generated  int64
	Delivered  int64
	Flits      int64
	AvgLatency float64 // mean latency of messages delivered in-window
	InFlight   int     // backlog at window end
	Killed     int64
}

// Throughput returns the window's accepted traffic in flits per node
// per cycle.
func (w Window) Throughput(healthyNodes int) float64 {
	cycles := w.End - w.Start
	if cycles == 0 || healthyNodes == 0 {
		return 0
	}
	return float64(w.Flits) / float64(cycles) / float64(healthyNodes)
}

// String renders a compact summary.
func (w Window) String() string {
	return fmt.Sprintf("[%d,%d) gen=%d del=%d lat=%.0f backlog=%d",
		w.Start, w.End, w.Generated, w.Delivered, w.AvgLatency, w.InFlight)
}

// windowCollector accumulates per-window deltas from cumulative engine
// statistics.
type windowCollector struct {
	size    int64
	net     *core.Network
	prev    core.Stats
	prevCyc int64
	windows []Window
}

func newWindowCollector(net *core.Network, size int64) *windowCollector {
	return &windowCollector{size: size, net: net, prevCyc: net.Cycle()}
}

// tick must be called once per cycle after Network.Step; it closes a
// window whenever `size` cycles have elapsed.
func (c *windowCollector) tick() {
	if c.net.Cycle()-c.prevCyc < c.size {
		return
	}
	cur := c.net.Snapshot()
	w := Window{
		Start:     c.prevCyc,
		End:       c.net.Cycle(),
		Generated: cur.Generated - c.prev.Generated,
		Delivered: cur.Delivered - c.prev.Delivered,
		Flits:     cur.DeliveredFlits - c.prev.DeliveredFlits,
		Killed:    cur.Killed - c.prev.Killed,
		InFlight:  c.net.InFlight(),
	}
	if dc := cur.LatencyCount - c.prev.LatencyCount; dc > 0 {
		w.AvgLatency = float64(cur.LatencySum-c.prev.LatencySum) / float64(dc)
	}
	c.windows = append(c.windows, w)
	c.prev = cur
	c.prevCyc = c.net.Cycle()
}

// StableThroughput reports whether the last half of the windows'
// throughput stays within tol (relative) of their mean — a practical
// "has the run converged" check for open-loop load points.
func StableThroughput(windows []Window, healthyNodes int, tol float64) bool {
	if len(windows) < 4 {
		return false
	}
	half := windows[len(windows)/2:]
	mean := 0.0
	for _, w := range half {
		mean += w.Throughput(healthyNodes)
	}
	mean /= float64(len(half))
	if mean == 0 {
		return false
	}
	for _, w := range half {
		if d := w.Throughput(healthyNodes)/mean - 1; d > tol || d < -tol {
			return false
		}
	}
	return true
}
