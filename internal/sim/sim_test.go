package sim

import (
	"math"
	"testing"

	"wormmesh/internal/topology"
)

func TestRunDeterministicPerSeed(t *testing.T) {
	p := DefaultParams()
	p.Algorithm = "Nbc"
	p.Rate = 0.002
	p.Faults = 5
	p.WarmupCycles = 500
	p.MeasureCycles = 2000
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Delivered != b.Stats.Delivered ||
		a.Stats.LatencySum != b.Stats.LatencySum ||
		a.Stats.FlitHops != b.Stats.FlitHops {
		t.Errorf("same params diverged: %d/%d vs %d/%d",
			a.Stats.Delivered, a.Stats.LatencySum, b.Stats.Delivered, b.Stats.LatencySum)
	}
}

func TestFaultSeedControlsPatternIndependently(t *testing.T) {
	p := DefaultParams()
	p.Faults = 8
	p.WarmupCycles = 100
	p.MeasureCycles = 400
	p.Rate = 0.0005

	// Same fault seed, different traffic seed: identical patterns.
	p.Seed = 1
	a, _ := Run(p)
	p.Seed = 2
	b, _ := Run(p)
	for id := range a.Stats.NodeCrossings {
		if a.Faults.IsFaulty(topology.NodeID(id)) != b.Faults.IsFaulty(topology.NodeID(id)) {
			t.Fatal("fault pattern changed with traffic seed")
		}
	}
	// Different fault seed: (almost surely) different pattern.
	p.FaultSeed = 99
	c, _ := Run(p)
	same := true
	for id := range a.Stats.NodeCrossings {
		if a.Faults.IsFaulty(topology.NodeID(id)) != c.Faults.IsFaulty(topology.NodeID(id)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different fault seeds produced identical patterns")
	}
}

func TestExplicitFaultNodes(t *testing.T) {
	p := DefaultParams()
	p.FaultNodes = []topology.NodeID{44, 45}
	p.WarmupCycles = 100
	p.MeasureCycles = 400
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultCount != 2 || res.Regions != 1 {
		t.Errorf("faults=%d regions=%d, want 2 faults in 1 region", res.FaultCount, res.Regions)
	}
	if !res.Faults.IsFaulty(44) || !res.Faults.IsFaulty(45) {
		t.Error("explicit fault nodes not applied")
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	var p Params
	if _, err := Run(p); err == nil {
		t.Error("zero params accepted")
	}
	p = DefaultParams()
	p.Algorithm = "nope"
	if _, err := Run(p); err == nil {
		t.Error("unknown algorithm accepted")
	}
	p = DefaultParams()
	p.Rate = -1
	if _, err := Run(p); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestNormalizedThroughputFormula(t *testing.T) {
	p := DefaultParams() // 10x10: capacity 4*10/100 = 0.4
	r := Result{Params: p}
	r.Stats.Cycles = 1000
	r.Stats.HealthyNodes = 100
	r.Stats.DeliveredFlits = 20000 // 0.2 flits/node/cycle
	if got := r.NormalizedThroughput(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("normalized = %v, want 0.5", got)
	}
	if got := r.OfferedLoad(); got != p.Rate*float64(p.MessageLength) {
		t.Errorf("offered load = %v", got)
	}
}

func TestAcceptanceRatio(t *testing.T) {
	var r Result
	if r.AcceptanceRatio() != 0 {
		t.Error("empty acceptance nonzero")
	}
	r.Stats.Generated = 100
	r.Stats.Delivered = 80
	if r.AcceptanceRatio() != 0.8 {
		t.Errorf("acceptance = %v", r.AcceptanceRatio())
	}
}

func TestLoadDistributionMath(t *testing.T) {
	p := DefaultParams()
	p.FaultNodes = []topology.NodeID{44} // (4,4): ring of 8 nodes
	p.WarmupCycles = 0
	p.MeasureCycles = 1
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the crossings with synthetic data: ring nodes carry 2,
	// the peak node 10, everyone else 1.
	mesh := res.Faults.Topo
	for id := range res.Stats.NodeCrossings {
		nid := topology.NodeID(id)
		switch {
		case res.Faults.IsFaulty(nid):
			res.Stats.NodeCrossings[id] = 0
		case res.Faults.OnAnyRing(nid):
			res.Stats.NodeCrossings[id] = 2
		default:
			res.Stats.NodeCrossings[id] = 1
		}
	}
	peak := mesh.ID(topology.Coord{X: 0, Y: 0})
	res.Stats.NodeCrossings[peak] = 10
	res.Stats.Cycles = 1

	d := res.LoadDistribution()
	if d.RingNodes != 8 {
		t.Fatalf("ring nodes = %d, want 8", d.RingNodes)
	}
	if d.OtherNodes != 91 {
		t.Fatalf("other nodes = %d, want 91", d.OtherNodes)
	}
	if d.PeakLoad != 10 || d.PeakNode != peak {
		t.Errorf("peak = %v at %d", d.PeakLoad, d.PeakNode)
	}
	if math.Abs(d.RingShare-0.2) > 1e-9 {
		t.Errorf("ring share = %v, want 0.2", d.RingShare)
	}
	wantOther := (float64(90) + 10) / 91 / 10
	if math.Abs(d.OtherShare-wantOther) > 1e-9 {
		t.Errorf("other share = %v, want %v", d.OtherShare, wantOther)
	}
	if math.Abs(d.PeakUtilization-2.0) > 1e-9 {
		t.Errorf("peak utilization = %v, want 2 (10/5)", d.PeakUtilization)
	}
}

func TestLoadDistributionEmptyWindow(t *testing.T) {
	p := DefaultParams()
	p.WarmupCycles = 0
	p.MeasureCycles = 1
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	res.Stats.Cycles = 0
	d := res.LoadDistribution()
	if d.PeakLoad != 0 || d.RingShare != 0 {
		t.Error("empty window produced nonzero distribution")
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	p := DefaultParams()
	p.Rate = 0.001
	p.WarmupCycles = 2000
	p.MeasureCycles = 2000
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != 2000 {
		t.Errorf("measured cycles = %d, want 2000", res.Stats.Cycles)
	}
	// Roughly rate*nodes*cycles messages generated in the window, not
	// double that (which would indicate warm-up leakage).
	want := 0.001 * 100 * 2000
	if float64(res.Stats.Generated) > 1.5*want {
		t.Errorf("generated %d, want ~%.0f (warm-up leaked?)", res.Stats.Generated, want)
	}
}

func TestRingNodesCounted(t *testing.T) {
	p := DefaultParams()
	p.FaultNodes = []topology.NodeID{44}
	p.WarmupCycles = 0
	p.MeasureCycles = 1
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.RingNodes != 8 {
		t.Errorf("RingNodes = %d, want 8", res.RingNodes)
	}
}
