package report

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapRenders(t *testing.T) {
	h := Heatmap{
		Title:  "test",
		Width:  3,
		Height: 2,
		Values: []float64{0, 5, 10, math.NaN(), 2.5, 10},
		Legend: true,
	}
	var sb strings.Builder
	if err := h.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "test") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "X") {
		t.Error("NaN cell not rendered as X")
	}
	if !strings.Contains(out, "@") {
		t.Error("max cell not rendered with hottest rune")
	}
	if !strings.Contains(out, "scale:") {
		t.Error("legend missing")
	}
	// +Y up: row printed first is y=1, whose first cell is the NaN.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "  1  X") {
		t.Errorf("top row = %q, want y=1 starting with X", lines[1])
	}
}

func TestHeatmapSizeMismatch(t *testing.T) {
	h := Heatmap{Width: 2, Height: 2, Values: []float64{1}}
	var sb strings.Builder
	if err := h.Write(&sb); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestHeatmapAllZero(t *testing.T) {
	h := Heatmap{Width: 2, Height: 2, Values: make([]float64, 4)}
	var sb strings.Builder
	if err := h.Write(&sb); err != nil {
		t.Fatal(err)
	}
}
