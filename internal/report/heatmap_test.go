package report

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapRenders(t *testing.T) {
	h := Heatmap{
		Title:  "test",
		Width:  3,
		Height: 2,
		Values: []float64{0, 5, 10, math.NaN(), 2.5, 10},
		Legend: true,
	}
	var sb strings.Builder
	if err := h.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "test") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "X") {
		t.Error("NaN cell not rendered as X")
	}
	if !strings.Contains(out, "@") {
		t.Error("max cell not rendered with hottest rune")
	}
	if !strings.Contains(out, "scale:") {
		t.Error("legend missing")
	}
	// +Y up: row printed first is y=1, whose first cell is the NaN.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "  1  X") {
		t.Errorf("top row = %q, want y=1 starting with X", lines[1])
	}
}

func TestHeatmapSizeMismatch(t *testing.T) {
	h := Heatmap{Width: 2, Height: 2, Values: []float64{1}}
	var sb strings.Builder
	if err := h.Write(&sb); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestHeatmapWrapEdges(t *testing.T) {
	h := Heatmap{
		Width:  3,
		Height: 2,
		Values: []float64{0, 5, 10, 1, 2.5, 10},
		Legend: true,
	}
	var sb strings.Builder
	if err := h.Write(&sb); err != nil {
		t.Fatal(err)
	}
	plain := sb.String()
	if strings.Contains(plain, "~") {
		t.Errorf("mesh heatmap (flags unset) contains the wrap glyph:\n%s", plain)
	}

	h.WrapX, h.WrapY = true, true
	sb.Reset()
	if err := h.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(out, "\n")
	// WrapY frames the grid with a '~' row above and below.
	wrapRow := "     ~ ~ ~ "
	if lines[0] != wrapRow {
		t.Errorf("top wrap row = %q, want %q", lines[0], wrapRow)
	}
	if lines[3] != wrapRow {
		t.Errorf("bottom wrap row = %q, want %q", lines[3], wrapRow)
	}
	// WrapX swaps a column of '~' into the row lead (same width as the
	// mesh lead, keeping the x-axis aligned) and appends one at the end.
	for _, row := range lines[1:3] {
		if !strings.Contains(row, " ~") || !strings.HasSuffix(row, "~") {
			t.Errorf("value row %q lacks the X wrap glyphs", row)
		}
	}
	if !strings.Contains(out, "~ = wraparound edge") {
		t.Error("legend does not explain the wrap glyph")
	}
	// The x-axis line itself must be identical to the mesh rendering.
	plainLines := strings.Split(plain, "\n")
	if lines[4] != plainLines[2] {
		t.Errorf("x-axis shifted by wrap framing: %q vs %q", lines[4], plainLines[2])
	}
}

func TestHeatmapAllZero(t *testing.T) {
	h := Heatmap{Width: 2, Height: 2, Values: make([]float64, 4)}
	var sb strings.Builder
	if err := h.Write(&sb); err != nil {
		t.Fatal(err)
	}
}
