package report

import (
	"math"
	"strings"
	"testing"
)

// testView builds a 2×2 link view with distinct values per direction
// so rendering positions are checkable.
func testView() *LinkView {
	lv := &LinkView{Width: 2, Height: 2}
	for d := 0; d < linkDirs; d++ {
		lv.Dir[d] = make([]float64, 4)
		for i := range lv.Dir[d] {
			lv.Dir[d][i] = math.NaN()
		}
	}
	return lv
}

func TestLinkViewRendersBlocksAndMarks(t *testing.T) {
	lv := testView()
	lv.Title = "links"
	lv.Legend = true
	// Node (0,0): hot east link, cold north link; node (1,1) faulty.
	lv.Dir[LinkEast][0] = 10
	lv.Dir[LinkNorth][0] = 0
	lv.Dir[LinkWest][1] = 5
	lv.NodeMark = []byte{0, 0, 0, 'X'}
	var sb strings.Builder
	if err := lv.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "links") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "X") {
		t.Error("node mark not rendered")
	}
	if !strings.Contains(out, "@") {
		t.Error("max link not rendered with hottest rune")
	}
	if !strings.Contains(out, "scale:") || !strings.Contains(out, "blank = no link") {
		t.Error("legend missing")
	}
	// 2 mesh rows × 3 text rows + title + x-axis + legend = 9 lines.
	if lines := strings.Count(out, "\n"); lines != 9 {
		t.Errorf("rendered %d lines, want 9:\n%s", lines, out)
	}
	// Row y=0 middle line: node (0,0)'s block is ".(mark)@" — hot east
	// link at the block's right, NaN west link blank.
	mid := strings.Split(out, "\n")[5]
	if !strings.HasPrefix(mid, "  0   .@ ") {
		t.Errorf("y=0 middle row = %q, want leading \"  0   .@ \"", mid)
	}
}

func TestLinkViewSizeMismatch(t *testing.T) {
	lv := testView()
	lv.Dir[LinkSouth] = lv.Dir[LinkSouth][:2]
	var sb strings.Builder
	if err := lv.Write(&sb); err == nil {
		t.Error("direction length mismatch accepted")
	}
	lv = testView()
	lv.NodeMark = []byte{1}
	if err := lv.Write(&sb); err == nil {
		t.Error("node mark length mismatch accepted")
	}
}

func TestLinkViewInfAndDegenerateScales(t *testing.T) {
	// A +Inf link renders hottest without flattening the finite scale;
	// -Inf and all-zero render coldest.
	if got := linkCell(math.Inf(1), 100); got != '@' {
		t.Errorf("+Inf cell = %q, want '@'", got)
	}
	if got := linkCell(math.Inf(-1), 100); got != ' ' {
		t.Errorf("-Inf cell = %q, want coldest ' '", got)
	}
	if got := linkCell(5, 0); got != ' ' {
		t.Errorf("zero-max cell = %q, want coldest ' '", got)
	}
	if got := linkCell(math.NaN(), 100); got != ' ' {
		t.Errorf("NaN cell = %q, want blank", got)
	}
	// All-equal finite values land on the hottest rune (v == max).
	if got := linkCell(3, 3); got != '@' {
		t.Errorf("all-equal cell = %q, want '@'", got)
	}

	lv := testView()
	lv.Dir[LinkEast][0] = math.Inf(1)
	lv.Dir[LinkEast][1] = 4
	lv.Dir[LinkEast][2] = 2
	var sb strings.Builder
	if err := lv.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The finite max (4) must still render hottest despite the Inf cell.
	if strings.Count(out, "@") < 2 {
		t.Errorf("Inf cell flattened the finite scale:\n%s", out)
	}
}

func TestLinkViewWrapEdges(t *testing.T) {
	lv := testView()
	lv.Dir[LinkEast][0] = 10
	lv.Legend = true
	var sb strings.Builder
	if err := lv.Write(&sb); err != nil {
		t.Fatal(err)
	}
	plain := sb.String()
	if strings.Contains(plain, "~") {
		t.Errorf("mesh link view (flags unset) contains the wrap glyph:\n%s", plain)
	}

	lv.WrapX, lv.WrapY = true, true
	sb.Reset()
	if err := lv.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(out, "\n")
	// WrapY frames the 2×2 grid with a '~' row above and below, one
	// glyph under each node block's center column.
	wrapRow := "      ~   ~  "
	if lines[0] != wrapRow {
		t.Errorf("top wrap row = %q, want %q", lines[0], wrapRow)
	}
	if lines[7] != wrapRow {
		t.Errorf("bottom wrap row = %q, want %q", lines[7], wrapRow)
	}
	// WrapX marks only the middle (E/W link) text row of each mesh row:
	// lead '~' in the axis gutter and a trailing '~' after the east cell.
	for _, i := range []int{2, 5} {
		row := lines[i]
		if !strings.HasPrefix(row[3:], " ~") || !strings.HasSuffix(row, "~") {
			t.Errorf("middle row %q lacks the X wrap glyphs", row)
		}
	}
	for _, i := range []int{1, 3, 4, 6} {
		if strings.Contains(lines[i], "~") {
			t.Errorf("N/S link row %q carries a wrap glyph (belongs on E/W rows only)", lines[i])
		}
	}
	if !strings.Contains(out, "~ = wraparound edge") {
		t.Error("legend does not explain the wrap glyph")
	}
	// The x-axis line must be identical to the mesh rendering.
	plainLines := strings.Split(plain, "\n")
	if lines[8] != plainLines[6] {
		t.Errorf("x-axis shifted by wrap framing: %q vs %q", lines[8], plainLines[6])
	}
}

func TestHeatmapInfCells(t *testing.T) {
	h := Heatmap{
		Width:  3,
		Height: 1,
		Values: []float64{math.Inf(1), 8, math.Inf(-1)},
		Legend: true,
	}
	var sb strings.Builder
	if err := h.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// +Inf and the finite max 8 both render '@'; -Inf renders coldest.
	row := strings.Split(out, "\n")[0]
	if !strings.HasPrefix(row, "  0  @ @   ") {
		t.Errorf("row = %q, want \"  0  @ @   \" (Inf hot, 8 hot, -Inf cold)", row)
	}
	// Legend scale is the finite max, not Inf.
	if !strings.Contains(out, "'@' = 8") {
		t.Errorf("legend does not use the finite max:\n%s", out)
	}
}

func TestHeatmapSingleCell(t *testing.T) {
	h := Heatmap{Width: 1, Height: 1, Values: []float64{42}}
	var sb strings.Builder
	if err := h.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "@") {
		t.Error("single non-zero cell not rendered hottest")
	}
}
