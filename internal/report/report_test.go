package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("name", "value", "note")
	tab.AddRow("alpha", 1.5, "x")
	tab.AddRow("b", 0.25, "longer note")
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header, rule, 2 rows)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("rule = %q", lines[1])
	}
	// Columns align: "value" column starts at the same offset.
	if strings.Index(lines[2], "1.5000") != strings.Index(lines[3], "0.2500") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("x,with,commas", 2)
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx;with;commas,2\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1.23456: "1.2346",
		0:       "0.0000",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if FormatFloat(math.NaN()) != "-" {
		t.Error("NaN not dashed")
	}
	if got := FormatFloat(0.0000123); !strings.Contains(got, "e-") {
		t.Errorf("tiny value not scientific: %q", got)
	}
}

func TestLineChartRendersSeries(t *testing.T) {
	c := &LineChart{Title: "test chart", XLabel: "load", Width: 40, Height: 10}
	c.Add(Series{Name: "rising", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}})
	c.Add(Series{Name: "flat", X: []float64{0, 1, 2, 3}, Y: []float64{1, 1, 1, 1}})
	var sb strings.Builder
	if err := c.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"test chart", "A = rising", "B = flat", "load", "A", "B"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestLineChartHandlesDegenerateData(t *testing.T) {
	c := &LineChart{Width: 20, Height: 5}
	c.Add(Series{Name: "point", X: []float64{1}, Y: []float64{2}})
	var sb strings.Builder
	if err := c.Write(&sb); err != nil {
		t.Fatal(err)
	}
	c2 := &LineChart{Width: 20, Height: 5}
	c2.Add(Series{Name: "nan", X: []float64{math.NaN()}, Y: []float64{math.NaN()}})
	sb.Reset()
	if err := c2.Write(&sb); err != nil {
		t.Fatal(err)
	}
	empty := &LineChart{}
	sb.Reset()
	if err := empty.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestBarChart(t *testing.T) {
	b := &BarChart{Title: "bars", Width: 20}
	b.Add("big", 10)
	b.Add("half", 5)
	b.Add("zero", 0)
	var sb strings.Builder
	if err := b.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	big := strings.Count(lines[1], "#")
	half := strings.Count(lines[2], "#")
	zero := strings.Count(lines[3], "#")
	if big != 20 || half != 10 || zero != 0 {
		t.Errorf("bar widths = %d, %d, %d; want 20, 10, 0", big, half, zero)
	}
}

func TestBarChartAllZero(t *testing.T) {
	b := &BarChart{}
	b.Add("a", 0)
	var sb strings.Builder
	if err := b.Write(&sb); err != nil {
		t.Fatal(err)
	}
}
