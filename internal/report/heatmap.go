package report

import (
	"fmt"
	"io"
	"math"
)

// Heatmap renders a width×height grid of values as ASCII shading with
// +Y drawn upward (matching the paper's mesh coordinates). Cells with
// NaN values (e.g. faulty nodes) render as 'X'.
type Heatmap struct {
	Title  string
	Width  int
	Height int
	// Values indexed [y*Width+x].
	Values []float64
	// WrapX / WrapY mark the grid as wrapping in that dimension (torus
	// runs): a '~' edge-glyph column (WrapX) or row (WrapY) frames the
	// grid on both sides so the wrap adjacency is visible. Unset, the
	// rendering is byte-identical to the mesh form.
	WrapX, WrapY bool
	// Legend, when true, appends the value scale.
	Legend bool
}

// ramp orders shading characters from cold to hot.
const ramp = " .:-=+*#%@"

// Write renders the heatmap.
func (h *Heatmap) Write(w io.Writer) error {
	if len(h.Values) != h.Width*h.Height {
		return fmt.Errorf("report: heatmap needs %d values, got %d", h.Width*h.Height, len(h.Values))
	}
	// The scale maximum is taken over FINITE values only: a single +Inf
	// cell must not flatten every real value to the cold end of the ramp
	// (and Inf/Inf would hand int() a NaN, whose conversion is
	// platform-defined). Infinities render explicitly instead.
	max := 0.0
	for _, v := range h.Values {
		if !math.IsNaN(v) && !math.IsInf(v, 0) && v > max {
			max = v
		}
	}
	if h.Title != "" {
		if _, err := fmt.Fprintln(w, h.Title); err != nil {
			return err
		}
	}
	if h.WrapY {
		if err := h.writeWrapRow(w); err != nil {
			return err
		}
	}
	for y := h.Height - 1; y >= 0; y-- {
		lead := "%3d  "
		if h.WrapX {
			lead = "%3d ~"
		}
		if _, err := fmt.Fprintf(w, lead, y); err != nil {
			return err
		}
		for x := 0; x < h.Width; x++ {
			v := h.Values[y*h.Width+x]
			var ch byte
			switch {
			case math.IsNaN(v):
				ch = 'X'
			case math.IsInf(v, 1):
				ch = ramp[len(ramp)-1] // hotter than every finite cell
			case math.IsInf(v, -1):
				ch = ramp[0]
			case max == 0:
				ch = ramp[0]
			default:
				idx := int(v / max * float64(len(ramp)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(ramp) {
					idx = len(ramp) - 1
				}
				ch = ramp[idx]
			}
			if _, err := fmt.Fprintf(w, "%c ", ch); err != nil {
				return err
			}
		}
		if h.WrapX {
			if _, err := fmt.Fprint(w, "~"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if h.WrapY {
		if err := h.writeWrapRow(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "     "); err != nil {
		return err
	}
	for x := 0; x < h.Width; x++ {
		if _, err := fmt.Fprintf(w, "%-2d", x%10); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if h.Legend {
		suffix := ""
		if h.WrapX || h.WrapY {
			suffix = ", ~ = wraparound edge"
		}
		if _, err := fmt.Fprintf(w, "scale: '%c' = 0 … '%c' = %s (X = faulty%s)\n",
			ramp[0], ramp[len(ramp)-1], FormatFloat(max), suffix); err != nil {
			return err
		}
	}
	return nil
}

// writeWrapRow prints the '~' edge-glyph row marking a Y wraparound,
// one glyph under/over each cell column.
func (h *Heatmap) writeWrapRow(w io.Writer) error {
	if _, err := fmt.Fprint(w, "     "); err != nil {
		return err
	}
	for x := 0; x < h.Width; x++ {
		if _, err := fmt.Fprint(w, "~ "); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
