package report

import (
	"fmt"
	"io"
	"math"
)

// Heatmap renders a width×height grid of values as ASCII shading with
// +Y drawn upward (matching the paper's mesh coordinates). Cells with
// NaN values (e.g. faulty nodes) render as 'X'.
type Heatmap struct {
	Title  string
	Width  int
	Height int
	// Values indexed [y*Width+x].
	Values []float64
	// Legend, when true, appends the value scale.
	Legend bool
}

// ramp orders shading characters from cold to hot.
const ramp = " .:-=+*#%@"

// Write renders the heatmap.
func (h *Heatmap) Write(w io.Writer) error {
	if len(h.Values) != h.Width*h.Height {
		return fmt.Errorf("report: heatmap needs %d values, got %d", h.Width*h.Height, len(h.Values))
	}
	// The scale maximum is taken over FINITE values only: a single +Inf
	// cell must not flatten every real value to the cold end of the ramp
	// (and Inf/Inf would hand int() a NaN, whose conversion is
	// platform-defined). Infinities render explicitly instead.
	max := 0.0
	for _, v := range h.Values {
		if !math.IsNaN(v) && !math.IsInf(v, 0) && v > max {
			max = v
		}
	}
	if h.Title != "" {
		if _, err := fmt.Fprintln(w, h.Title); err != nil {
			return err
		}
	}
	for y := h.Height - 1; y >= 0; y-- {
		if _, err := fmt.Fprintf(w, "%3d  ", y); err != nil {
			return err
		}
		for x := 0; x < h.Width; x++ {
			v := h.Values[y*h.Width+x]
			var ch byte
			switch {
			case math.IsNaN(v):
				ch = 'X'
			case math.IsInf(v, 1):
				ch = ramp[len(ramp)-1] // hotter than every finite cell
			case math.IsInf(v, -1):
				ch = ramp[0]
			case max == 0:
				ch = ramp[0]
			default:
				idx := int(v / max * float64(len(ramp)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(ramp) {
					idx = len(ramp) - 1
				}
				ch = ramp[idx]
			}
			if _, err := fmt.Fprintf(w, "%c ", ch); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "     "); err != nil {
		return err
	}
	for x := 0; x < h.Width; x++ {
		if _, err := fmt.Fprintf(w, "%-2d", x%10); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if h.Legend {
		if _, err := fmt.Fprintf(w, "scale: '%c' = 0 … '%c' = %s (X = faulty)\n",
			ramp[0], ramp[len(ramp)-1], FormatFloat(max)); err != nil {
			return err
		}
	}
	return nil
}
