package report

import (
	"math"
	"strings"
	"testing"
)

func TestSparklineBasics(t *testing.T) {
	if s := Sparkline(nil, 10); s != "" {
		t.Errorf("empty series = %q, want empty", s)
	}
	// A monotone ramp spans the whole alphabet, lowest to highest.
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	if ramp != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp = %q", ramp)
	}
	// Flat series: all lowest level, one rune per value.
	flat := Sparkline([]float64{3, 3, 3}, 0)
	if flat != "▁▁▁" {
		t.Errorf("flat = %q", flat)
	}
	// NaN renders as a gap without poisoning the scale.
	gap := Sparkline([]float64{0, math.NaN(), 7}, 0)
	if []rune(gap)[1] != ' ' {
		t.Errorf("NaN column = %q", gap)
	}
	if []rune(gap)[0] != '▁' || []rune(gap)[2] != '█' {
		t.Errorf("scale around NaN = %q", gap)
	}
}

func TestSparklineDownsample(t *testing.T) {
	// 100 values into 10 columns: each column is its bucket's mean, so a
	// linear ramp still spans the alphabet monotonically.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := Sparkline(vals, 10)
	runes := []rune(s)
	if len(runes) != 10 {
		t.Fatalf("width = %d, want 10", len(runes))
	}
	for i := 1; i < len(runes); i++ {
		if strings.IndexRune(string(sparkRamp), runes[i]) < strings.IndexRune(string(sparkRamp), runes[i-1]) {
			t.Errorf("downsampled ramp not monotone: %q", s)
		}
	}
	if runes[0] != sparkRamp[0] || runes[9] != sparkRamp[len(sparkRamp)-1] {
		t.Errorf("ramp ends = %q", s)
	}
	// Fewer values than width: no stretching, one column per value.
	if got := Sparkline([]float64{1, 2}, 10); len([]rune(got)) != 2 {
		t.Errorf("short series = %q, want 2 columns", got)
	}
}
