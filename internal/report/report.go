// Package report renders experiment results as aligned text tables,
// CSV files, and terminal-friendly ASCII line/bar charts, so every
// figure of the paper can be regenerated without a plotting stack.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly (4 significant decimals, NaN
// as "-").
func FormatFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if v != 0 && math.Abs(v) < 0.001 {
		return fmt.Sprintf("%.2e", v)
	}
	return fmt.Sprintf("%.4f", v)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (no quoting needed for the
// numeric/identifier content we emit; commas in cells are replaced).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	row := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// Series is one curve of a line chart.
type Series struct {
	Name string
	X, Y []float64
}

// LineChart renders multiple series on a text grid. Each series is
// drawn with its own letter; overlapping points show the later series.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Series []Series
	// YMin/YMax fix the y range; when both zero the range is derived
	// from the data.
	YMin, YMax float64
}

// Add appends a series.
func (c *LineChart) Add(s Series) { c.Series = append(c.Series, s) }

// Write renders the chart.
func (c *LineChart) Write(w io.Writer) error {
	width, height := c.Width, c.Height
	if width == 0 {
		width = 72
	}
	if height == 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	}
	if math.IsInf(xmin, 1) || xmax == xmin {
		xmax, xmin = xmin+1, xmin-1
	}
	if ymax == ymin {
		ymax, ymin = ymin+1, ymin-1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	mark := func(x, y float64, ch byte) {
		if math.IsNaN(x) || math.IsNaN(y) {
			return
		}
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		row := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		grid[height-1-row][col] = ch
	}
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	for si, s := range c.Series {
		ch := letters[si%len(letters)]
		for i := range s.X {
			mark(s.X[i], s.Y[i], ch)
		}
	}
	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	for i, row := range grid {
		label := "        "
		if i == 0 {
			label = fmt.Sprintf("%8.3g", ymax)
		} else if i == height-1 {
			label = fmt.Sprintf("%8.3g", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, row); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-10.4g%s%10.4g   (%s)\n", strings.Repeat(" ", 8), xmin,
		strings.Repeat(" ", maxInt(0, width-22)), xmax, c.XLabel); err != nil {
		return err
	}
	for si, s := range c.Series {
		if _, err := fmt.Fprintf(w, "  %c = %s\n", letters[si%len(letters)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

// Bar is one bar of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders labeled horizontal bars scaled to the maximum.
type BarChart struct {
	Title string
	Unit  string
	Width int
	Bars  []Bar
}

// Add appends a bar.
func (b *BarChart) Add(label string, value float64) {
	b.Bars = append(b.Bars, Bar{Label: label, Value: value})
}

// Write renders the chart.
func (b *BarChart) Write(w io.Writer) error {
	width := b.Width
	if width == 0 {
		width = 50
	}
	if b.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", b.Title); err != nil {
			return err
		}
	}
	maxV, maxL := 0.0, 0
	for _, bar := range b.Bars {
		if bar.Value > maxV {
			maxV = bar.Value
		}
		if len(bar.Label) > maxL {
			maxL = len(bar.Label)
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for _, bar := range b.Bars {
		n := int(math.Round(bar.Value / maxV * float64(width)))
		if n < 0 {
			n = 0
		}
		if _, err := fmt.Fprintf(w, "  %-*s |%s %s%s\n", maxL, bar.Label,
			strings.Repeat("#", n), FormatFloat(bar.Value), b.Unit); err != nil {
			return err
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
