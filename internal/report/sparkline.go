package report

import (
	"math"
	"strings"
)

// sparkRamp orders the Unicode block elements from empty to full — the
// conventional eight-level sparkline alphabet.
var sparkRamp = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width one-line chart: each column
// is one value scaled into the eight block-element levels, with the
// scale taken over the finite values present (an all-zero or empty
// series renders as the lowest level). NaN values render as a space.
// When len(values) exceeds width, the series is downsampled by taking
// the mean of each column's bucket, so the line always shows the whole
// series; when it fits, one rune per value is emitted with no padding.
// A non-positive width means "one column per value".
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width <= 0 || width > len(values) {
		width = len(values)
	}
	cols := make([]float64, width)
	for i := range cols {
		// Bucket [lo, hi) of the input maps to column i.
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi == lo {
			hi = lo + 1
		}
		sum, n := 0.0, 0
		for _, v := range values[lo:hi] {
			if math.IsNaN(v) {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			cols[i] = math.NaN()
		} else {
			cols[i] = sum / float64(n)
		}
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range cols {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range cols {
		switch {
		case math.IsNaN(v):
			b.WriteRune(' ')
		case max <= min: // flat (or single-value) series
			b.WriteRune(sparkRamp[0])
		default:
			level := int((v - min) / (max - min) * float64(len(sparkRamp)-1))
			if level < 0 {
				level = 0
			}
			if level >= len(sparkRamp) {
				level = len(sparkRamp) - 1
			}
			b.WriteRune(sparkRamp[level])
		}
	}
	return b.String()
}
