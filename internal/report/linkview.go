package report

import (
	"fmt"
	"io"
	"math"
)

// Direction indices for LinkView.Dir, matching the engine's direction
// order without importing the topology package.
const (
	LinkEast = iota
	LinkWest
	LinkNorth
	LinkSouth
	linkDirs
)

// LinkView renders a composite map of all four directional links of a
// Width×Height mesh as ASCII shading, +Y upward. Each node becomes a
// 3×3 character block:
//
//	. N .
//	W c E
//	. S .
//
// where N/E/S/W are the shading of the node's outgoing link in that
// direction and c is the node's mark (NodeMark, e.g. 'X' for faulty or
// 'o' for f-ring membership). All four directions share one scale so a
// hot eastbound link and a hot northbound link compare directly.
type LinkView struct {
	Title  string
	Width  int
	Height int
	// Dir[d][y*Width+x] is the value of node (x,y)'s outgoing link in
	// direction d (LinkEast..LinkSouth). NaN cells (nonexistent or
	// faulty links) render as blank.
	Dir [linkDirs][]float64
	// NodeMark[y*Width+x], when non-zero, replaces the center '.' of
	// the node's block.
	NodeMark []byte
	// WrapX / WrapY mark the grid as wrapping in that dimension (torus
	// runs): a '~' edge-glyph column (WrapX) or row (WrapY) frames the
	// grid on both sides, so the shaded E/W cells of edge nodes read as
	// wraparound links rather than dead ends. Unset, the rendering is
	// byte-identical to the mesh form.
	WrapX, WrapY bool
	// Legend, when true, appends the value scale.
	Legend bool
}

// cell returns the shading character for one link value against max.
func linkCell(v, max float64) byte {
	switch {
	case math.IsNaN(v):
		return ' '
	case math.IsInf(v, 1):
		return ramp[len(ramp)-1]
	case math.IsInf(v, -1), max == 0:
		return ramp[0]
	default:
		idx := int(v / max * float64(len(ramp)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		return ramp[idx]
	}
}

// Write renders the composite link view.
func (lv *LinkView) Write(w io.Writer) error {
	n := lv.Width * lv.Height
	for d := 0; d < linkDirs; d++ {
		if len(lv.Dir[d]) != n {
			return fmt.Errorf("report: link view dir %d needs %d values, got %d", d, n, len(lv.Dir[d]))
		}
	}
	if lv.NodeMark != nil && len(lv.NodeMark) != n {
		return fmt.Errorf("report: link view needs %d node marks, got %d", n, len(lv.NodeMark))
	}
	// Shared scale over finite values of every direction (see Heatmap:
	// infinities must not flatten the ramp).
	max := 0.0
	for d := 0; d < linkDirs; d++ {
		for _, v := range lv.Dir[d] {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v > max {
				max = v
			}
		}
	}
	if lv.Title != "" {
		if _, err := fmt.Fprintln(w, lv.Title); err != nil {
			return err
		}
	}
	// Each mesh row is three text rows; a blank column separates node
	// blocks so the blocks read as units.
	if lv.WrapY {
		if err := lv.writeWrapRow(w); err != nil {
			return err
		}
	}
	for y := lv.Height - 1; y >= 0; y-- {
		for sub := 0; sub < 3; sub++ {
			if sub == 1 {
				lead := "%3d  "
				if lv.WrapX {
					lead = "%3d ~"
				}
				if _, err := fmt.Fprintf(w, lead, y); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprint(w, "     "); err != nil {
					return err
				}
			}
			for x := 0; x < lv.Width; x++ {
				i := y*lv.Width + x
				var a, b, c byte
				switch sub {
				case 0: // top row: north link
					a, b, c = ' ', linkCell(lv.Dir[LinkNorth][i], max), ' '
				case 1: // middle row: west, center mark, east
					mark := byte('.')
					if lv.NodeMark != nil && lv.NodeMark[i] != 0 {
						mark = lv.NodeMark[i]
					}
					a = linkCell(lv.Dir[LinkWest][i], max)
					b = mark
					c = linkCell(lv.Dir[LinkEast][i], max)
				case 2: // bottom row: south link
					a, b, c = ' ', linkCell(lv.Dir[LinkSouth][i], max), ' '
				}
				if _, err := fmt.Fprintf(w, "%c%c%c ", a, b, c); err != nil {
					return err
				}
			}
			if sub == 1 && lv.WrapX {
				if _, err := fmt.Fprint(w, "~"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	if lv.WrapY {
		if err := lv.writeWrapRow(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "     "); err != nil {
		return err
	}
	for x := 0; x < lv.Width; x++ {
		if _, err := fmt.Fprintf(w, " %-3d", x%100); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if lv.Legend {
		suffix := ""
		if lv.WrapX || lv.WrapY {
			suffix = "; ~ = wraparound edge"
		}
		if _, err := fmt.Fprintf(w, "scale: '%c' = 0 … '%c' = %s (blank = no link%s)\n",
			ramp[0], ramp[len(ramp)-1], FormatFloat(max), suffix); err != nil {
			return err
		}
	}
	return nil
}

// writeWrapRow prints the '~' edge-glyph row marking a Y wraparound,
// one glyph under/over each node block's center column.
func (lv *LinkView) writeWrapRow(w io.Writer) error {
	if _, err := fmt.Fprint(w, "     "); err != nil {
		return err
	}
	for x := 0; x < lv.Width; x++ {
		if _, err := fmt.Fprint(w, " ~  "); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
