package wormmesh_test

import (
	"testing"

	"wormmesh"
	"wormmesh/internal/experiments"
)

// The shape tests check the paper's qualitative findings at a reduced
// but statistically meaningful scale. They are the executable version
// of EXPERIMENTS.md's "expected shapes" column and are skipped under
// -short.

func shapeOptions() experiments.Options {
	o := experiments.Quick()
	o.WarmupCycles = 2000
	o.MeasureCycles = 6000
	o.FaultSets = 4
	return o
}

// TestShapeRestrictedVCChoiceHurts reproduces Figure 1's core finding:
// algorithms with free choice among many virtual channels saturate at
// or above the strictly supervised hop-based schemes, with PHop (one
// fixed class per hop) at the bottom.
func TestShapeRestrictedVCChoiceHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	o := shapeOptions()
	res, err := experiments.TrafficSweep(o, []string{"PHop", "NHop", "Duato-Nbc", "Minimal-Adaptive"},
		[]float64{0.002, 0.004, 0.008})
	if err != nil {
		t.Fatal(err)
	}
	phop := res.PeakThroughput("PHop")
	for _, better := range []string{"NHop", "Duato-Nbc", "Minimal-Adaptive"} {
		if peak := res.PeakThroughput(better); peak < phop*0.98 {
			t.Errorf("%s peak %.3f below PHop %.3f — paper expects PHop at the bottom", better, peak, phop)
		}
	}
}

// TestShapeThroughputDegradesWithFaults reproduces Figure 4's frame:
// normalized throughput at saturating load drops as faults rise, for
// every algorithm.
func TestShapeThroughputDegradesWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	o := shapeOptions()
	algs := []string{"PHop", "Nbc", "Duato-Nbc", "Boura-FT"}
	res, err := experiments.FaultSweep(o, algs, []int{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range algs {
		thr := res.Throughput[alg]
		if thr[1] >= thr[0] {
			t.Errorf("%s: throughput rose with 10%% faults: %.3f -> %.3f", alg, thr[0], thr[1])
		}
		lat := res.Latency[alg]
		if lat[1] <= lat[0]*0.9 {
			t.Errorf("%s: latency improved with faults: %.0f -> %.0f", alg, lat[0], lat[1])
		}
	}
}

// TestShapeDuatoNbcBeatsPHopUnderFaults reproduces the paper's main
// conclusion: the Duato-based modified schemes outperform the rigid
// hop-based schemes under faults.
func TestShapeDuatoNbcBeatsPHopUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	o := shapeOptions()
	res, err := experiments.FaultSweep(o, []string{"PHop", "Duato-Nbc", "Duato-Pbc"}, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	phop := res.Throughput["PHop"][0]
	if res.Throughput["Duato-Nbc"][0] <= phop {
		t.Errorf("Duato-Nbc %.3f not above PHop %.3f at 10%% faults",
			res.Throughput["Duato-Nbc"][0], phop)
	}
	if res.Throughput["Duato-Pbc"][0] <= phop {
		t.Errorf("Duato-Pbc %.3f not above PHop %.3f at 10%% faults",
			res.Throughput["Duato-Pbc"][0], phop)
	}
}

// TestShapeVCUsagePatterns reproduces Figure 3's reading: PHop leaves
// most of its class ladder cold (low classes saturated, high classes
// idle), while Duato's adaptive class spreads usage evenly — so PHop's
// imbalance ratio must exceed Duato's, and NHop must touch fewer
// distinct channels than Minimal-Adaptive's free pool.
func TestShapeVCUsagePatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	o := shapeOptions()
	res, err := experiments.VCUsage(o, []string{"PHop", "Duato", "Minimal-Adaptive"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pi, di := res.Imbalance("PHop"), res.Imbalance("Duato"); pi <= di {
		t.Errorf("PHop imbalance %.2f not above Duato %.2f", pi, di)
	}
	// PHop's first class channel must be its hottest: every message
	// starts at class 0.
	phop := res.Utilization["PHop"]
	hottest := 0
	for v := range phop {
		if phop[v] > phop[hottest] {
			hottest = v
		}
	}
	if hottest > 2 {
		t.Errorf("PHop hottest VC = %d, expected among the first classes", hottest)
	}
}

// TestShapeRingHotspotsUnderFaults reproduces Figure 6: in the
// fault-free network the load is spread (ring-node group close to the
// other group); with the fault pattern the distribution skews, and
// PHop — the least flexible scheme — skews at least as much as the
// card-based schemes.
func TestShapeRingHotspotsUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	o := shapeOptions()
	res, err := experiments.RingLoad(o, []string{"PHop", "Pbc", "Duato-Nbc"})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range res.Algorithms {
		free := res.FaultFree[alg]
		faulty := res.Faulty[alg]
		// Fault-free: the two groups are within 35 points of each
		// other (the paper shows them nearly equal).
		if diff := free.RingShare - free.OtherShare; diff > 0.35 || diff < -0.35 {
			t.Errorf("%s fault-free groups differ by %.2f", alg, diff)
		}
		// Under faults the overall distribution flattens less: the
		// mean/peak shares drop (peak grows faster than the mean).
		if faulty.OtherShare >= free.OtherShare*1.15 {
			t.Errorf("%s: faults flattened the load (%.2f -> %.2f)", alg, free.OtherShare, faulty.OtherShare)
		}
	}
}

// TestShapeBonusCardsNeverHurtMuch: Pbc/Nbc should perform at least
// about as well as PHop/NHop fault-free (the cards only widen choice).
func TestShapeBonusCardsNeverHurtMuch(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	o := shapeOptions()
	res, err := experiments.TrafficSweep(o, []string{"PHop", "Pbc", "NHop", "Nbc"}, []float64{0.003, 0.006})
	if err != nil {
		t.Fatal(err)
	}
	if pbc, phop := res.PeakThroughput("Pbc"), res.PeakThroughput("PHop"); pbc < phop*0.9 {
		t.Errorf("Pbc peak %.3f well below PHop %.3f", pbc, phop)
	}
	if nbc, nhop := res.PeakThroughput("Nbc"), res.PeakThroughput("NHop"); nbc < nhop*0.9 {
		t.Errorf("Nbc peak %.3f well below NHop %.3f", nbc, nhop)
	}
}

// TestShapeSaturationOrderingFaultFree: the saturation points line up
// with hardware flexibility — quick smoke-level check that latency at
// a mid load stays finite and ordered sensibly.
func TestShapeLatencyFiniteBelowSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	p := wormmesh.DefaultParams()
	p.Rate = 0.001 // well below saturation
	p.WarmupCycles = 2000
	p.MeasureCycles = 6000
	for _, alg := range wormmesh.Algorithms() {
		p.Algorithm = alg
		res, err := wormmesh.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		lat := res.Stats.AvgLatency()
		// Serialization bound is ~105 cycles (100 flits + ~6 hops); far
		// below saturation the average must stay in the low hundreds.
		if lat < 100 || lat > 400 {
			t.Errorf("%s: latency %.0f outside sane sub-saturation range", alg, lat)
		}
		if res.Stats.Killed > 0 {
			t.Errorf("%s: %d kills below saturation on a fault-free mesh", alg, res.Stats.Killed)
		}
	}
}
