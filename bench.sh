#!/usr/bin/env sh
# bench.sh — run the engine benchmarks and emit machine-readable digests.
#
# Usage: ./bench.sh [count]
#   count: -count passed to `go test -bench` (default 1; use 5+ for benchstat).
#
# Two suites run:
#   1. the core engine microbenchmarks          -> BENCH_core.txt / BENCH_core.json
#   2. the sweep-scale benchmarks (the faulted  -> BENCH_sweep.txt / BENCH_sweep.json
#      step loop in internal/routing and the
#      full sweep cell in internal/sweep)
#
# The raw `go test -bench` output is kept in the .txt files so benchstat can
# diff two runs; the .json files are a machine-readable digest of the same
# lines (name, iterations, ns/op, B/op, allocs/op, extra metrics).
set -eu

COUNT="${1:-1}"

# emit_json <in.txt> <out.json> — digest `go test -bench` lines into JSON.
emit_json() {
    awk '
    BEGIN { print "["; first = 1 }
    /^Benchmark/ {
        name = $1; iters = $2
        ns = ""; bytes = ""; allocs = ""
        extras = ""
        for (i = 3; i < NF; i += 2) {
            val = $i; unit = $(i + 1)
            if (unit == "ns/op") ns = val
            else if (unit == "B/op") bytes = val
            else if (unit == "allocs/op") allocs = val
            else {
                if (extras != "") extras = extras ","
                extras = extras "\"" unit "\":" val
            }
        }
        if (!first) print ","
        first = 0
        line = "  {\"name\":\"" name "\",\"iterations\":" iters
        if (ns != "")     line = line ",\"ns_per_op\":" ns
        if (bytes != "")  line = line ",\"bytes_per_op\":" bytes
        if (allocs != "") line = line ",\"allocs_per_op\":" allocs
        if (extras != "") line = line "," extras
        line = line "}"
        printf "%s", line
    }
    END { print ""; print "]" }
    ' "$1" > "$2"
}

go test ./internal/core/ -run '^$' -bench . -benchmem -count "$COUNT" | tee BENCH_core.txt
emit_json BENCH_core.txt BENCH_core.json

go test ./internal/routing/ ./internal/sweep/ -run '^$' \
    -bench 'BenchmarkStepLoadedFaulted|BenchmarkSweepCell' \
    -benchmem -count "$COUNT" | tee BENCH_sweep.txt
emit_json BENCH_sweep.txt BENCH_sweep.json

echo "wrote BENCH_core.{txt,json} and BENCH_sweep.{txt,json}"
