#!/usr/bin/env sh
# bench.sh — run the engine benchmarks and emit machine-readable digests.
#
# Usage: ./bench.sh [count]
#        ./bench.sh profile
#   count:   -count passed to `go test -bench` (default 1; use 5+ and diff
#            the JSON digests with `go run ./cmd/benchdiff old.json new.json`,
#            which aggregates repeated runs by median).
#   profile: run the sweep-cell benchmark once under the CPU and heap
#            profilers; drops profiles/sweepcell.{cpu,mem}.pprof plus the
#            test binary profiles/sweep.test for `go tool pprof`.
#
# Three suites run in the default mode:
#   1. the core engine microbenchmarks          -> BENCH_core.txt / BENCH_core.json
#      (incl. the StepIdle/StepLowLoad worklist-vs-fullscan pairs that
#      track the activity-driven engine against its reference path)
#   2. the sweep-scale benchmarks               -> BENCH_sweep.txt / BENCH_sweep.json
#      (the faulted step loop in internal/routing, the full and
#      hybrid sweep cells in internal/sweep, and the analytic
#      surrogate's per-query and table-build costs)
#   3. the result-service benchmarks            -> BENCH_serve.txt / BENCH_serve.json
#      (cold miss, warm cache hit through the full HTTP stack, the
#      raw 0-alloc lookup, a 64-way duplicate burst through the
#      singleflight scheduler, and the surrogate fast-path answer;
#      gate regressions with `benchdiff -suite serve`)
#
# The raw `go test -bench` output is kept in the .txt files so benchstat can
# diff two runs where it is available; the .json files are a machine-readable
# digest of the same lines (name, iterations, ns/op, B/op, allocs/op, extra
# metrics) consumed by cmd/benchdiff.
set -eu

if [ "${1:-}" = "profile" ]; then
    mkdir -p profiles
    go test ./internal/sweep/ -run '^$' -bench 'BenchmarkSweepCell$' -benchmem \
        -cpuprofile profiles/sweepcell.cpu.pprof \
        -memprofile profiles/sweepcell.mem.pprof \
        -o profiles/sweep.test
    echo "wrote profiles/sweepcell.{cpu,mem}.pprof (binary: profiles/sweep.test)"
    echo "inspect with: go tool pprof profiles/sweep.test profiles/sweepcell.cpu.pprof"
    exit 0
fi

COUNT="${1:-1}"

# emit_json <in.txt> <out.json> — digest `go test -bench` lines into JSON.
emit_json() {
    awk '
    BEGIN { print "["; first = 1 }
    /^Benchmark/ {
        name = $1; iters = $2
        ns = ""; bytes = ""; allocs = ""
        extras = ""
        for (i = 3; i < NF; i += 2) {
            val = $i; unit = $(i + 1)
            if (unit == "ns/op") ns = val
            else if (unit == "B/op") bytes = val
            else if (unit == "allocs/op") allocs = val
            else {
                if (extras != "") extras = extras ","
                extras = extras "\"" unit "\":" val
            }
        }
        if (!first) print ","
        first = 0
        line = "  {\"name\":\"" name "\",\"iterations\":" iters
        if (ns != "")     line = line ",\"ns_per_op\":" ns
        if (bytes != "")  line = line ",\"bytes_per_op\":" bytes
        if (allocs != "") line = line ",\"allocs_per_op\":" allocs
        if (extras != "") line = line "," extras
        line = line "}"
        printf "%s", line
    }
    END { print ""; print "]" }
    ' "$1" > "$2"
}

go test ./internal/core/ -run '^$' -bench . -benchmem -count "$COUNT" | tee BENCH_core.txt
emit_json BENCH_core.txt BENCH_core.json

go test ./internal/routing/ ./internal/sweep/ ./internal/analytic/ -run '^$' \
    -bench 'BenchmarkStepLoadedFaulted|BenchmarkSweepCell|BenchmarkHybridSweepCell|BenchmarkPredict|BenchmarkWithFaults' \
    -benchmem -count "$COUNT" | tee BENCH_sweep.txt
emit_json BENCH_sweep.txt BENCH_sweep.json

go test ./internal/serve/ -run '^$' -bench 'BenchmarkServe' \
    -benchmem -count "$COUNT" | tee BENCH_serve.txt
emit_json BENCH_serve.txt BENCH_serve.json

echo "wrote BENCH_core.{txt,json}, BENCH_sweep.{txt,json} and BENCH_serve.{txt,json}"
