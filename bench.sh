#!/usr/bin/env sh
# bench.sh — run the core engine benchmarks and emit BENCH_core.json.
#
# Usage: ./bench.sh [count]
#   count: -count passed to `go test -bench` (default 1; use 5+ for benchstat).
#
# The raw `go test -bench` output is kept in BENCH_core.txt so benchstat can
# diff two runs; BENCH_core.json is a machine-readable digest of the same
# lines (name, iterations, ns/op, B/op, allocs/op, extra metrics).
set -eu

COUNT="${1:-1}"
OUT_TXT="BENCH_core.txt"
OUT_JSON="BENCH_core.json"

go test ./internal/core/ -run '^$' -bench . -benchmem -count "$COUNT" | tee "$OUT_TXT"

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2
    ns = ""; bytes = ""; allocs = ""
    extras = ""
    for (i = 3; i < NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (unit == "ns/op") ns = val
        else if (unit == "B/op") bytes = val
        else if (unit == "allocs/op") allocs = val
        else {
            if (extras != "") extras = extras ","
            extras = extras "\"" unit "\":" val
        }
    }
    if (!first) print ","
    first = 0
    line = "  {\"name\":\"" name "\",\"iterations\":" iters
    if (ns != "")     line = line ",\"ns_per_op\":" ns
    if (bytes != "")  line = line ",\"bytes_per_op\":" bytes
    if (allocs != "") line = line ",\"allocs_per_op\":" allocs
    if (extras != "") line = line "," extras
    line = line "}"
    printf "%s", line
}
END { print ""; print "]" }
' "$OUT_TXT" > "$OUT_JSON"

echo "wrote $OUT_TXT and $OUT_JSON"
