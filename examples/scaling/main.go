// Scaling studies how the comparative results extend beyond the
// paper's 10×10 mesh: it runs a subset of algorithms on growing meshes
// with a proportional number of faults, using the deterministic
// parallel engine for the larger instances.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"wormmesh"
	"wormmesh/internal/report"
)

func main() {
	algorithms := []string{"NHop", "Duato-Nbc", "Minimal-Adaptive"}
	t := report.NewTable("mesh", "algorithm", "faults", "latency", "throughput", "detour", "wall")
	for _, size := range []int{10, 16, 20} {
		for _, alg := range algorithms {
			p := wormmesh.DefaultParams()
			p.Width, p.Height = size, size
			p.Algorithm = alg
			p.Rate = 0.001
			p.Faults = size * size / 20 // 5% of the mesh
			// Hop-based class ladders grow with the diameter: give
			// every algorithm the channels it needs on big meshes.
			if min, err := wormmesh.MinVCs(alg, wormmesh.NewMesh(size, size)); err == nil && min > p.Config.NumVCs {
				p.Config.NumVCs = min
			}
			p.WarmupCycles = 2000
			p.MeasureCycles = 6000
			if size > 10 {
				p.EngineWorkers = runtime.NumCPU()
			}
			res, err := wormmesh.Run(p)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(fmt.Sprintf("%dx%d", size, size), alg, res.FaultCount,
				res.Stats.AvgLatency(), res.Stats.Throughput(), res.Stats.AvgDetour(),
				res.Elapsed.Round(1e7).String())
		}
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmeshes above 10x10 use the deterministic parallel engine")
	fmt.Println("(same seed => same result for any worker count).")
}
