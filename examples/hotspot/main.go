// Hotspot contrasts traffic patterns: the paper's uniform workload
// against hotspot and transpose traffic, printing per-node load
// heatmaps that make the difference visible.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"wormmesh"
	"wormmesh/internal/report"
)

func main() {
	for _, pattern := range []string{"uniform", "hotspot", "transpose"} {
		p := wormmesh.DefaultParams()
		p.Algorithm = "Duato"
		p.Pattern = pattern
		p.Rate = 0.0015
		p.WarmupCycles = 2000
		p.MeasureCycles = 8000
		res, err := wormmesh.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats
		fmt.Printf("%s traffic: latency %.1f cycles, throughput %.4f flits/node/cycle\n",
			pattern, st.AvgLatency(), st.Throughput())
		values := make([]float64, len(st.NodeCrossings))
		for id, c := range st.NodeCrossings {
			if res.Faults.IsFaulty(wormmesh.NodeID(id)) {
				values[id] = math.NaN()
			} else {
				values[id] = float64(c) / float64(st.Cycles)
			}
		}
		hm := report.Heatmap{
			Width:  p.Width,
			Height: p.Height,
			Values: values,
			Legend: true,
		}
		if err := hm.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
