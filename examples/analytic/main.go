// Analytic demonstrates the closed-form latency model (the paper's
// stated future work) against the flit-level simulator: it measures
// one operating point, calibrates the model's contention gain on it,
// and then predicts the rest of the load range without further
// simulation.
package main

import (
	"fmt"
	"log"
	"os"

	"wormmesh"
	"wormmesh/internal/analytic"
	"wormmesh/internal/report"
)

func main() {
	model := analytic.Default()
	fmt.Printf("10x10 mesh, 100-flit messages: mean distance %.2f hops, %d channels\n",
		analytic.MeanDistance(model.Topo), analytic.ChannelCount(model.Topo))
	fmt.Printf("model saturation estimate: %.4f messages/node/cycle\n\n", model.SaturationRate())

	// One simulator measurement to anchor the model.
	anchorRate := 0.001
	p := wormmesh.DefaultParams()
	p.Algorithm = "Minimal-Adaptive"
	p.Rate = anchorRate
	p.WarmupCycles = 3000
	p.MeasureCycles = 9000
	res, err := wormmesh.Run(p)
	if err != nil {
		log.Fatal(err)
	}
	measured := res.Stats.AvgLatency()
	calibrated, err := model.Calibrate(anchorRate, measured)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated at rate %g: simulator %.1f cycles, contention gain %.2f\n\n",
		anchorRate, measured, calibrated.ContentionGain)

	t := report.NewTable("rate", "model latency", "blocking prob", "stretch", "source wait")
	for _, rate := range []float64{0.0005, 0.001, 0.0015, 0.002, 0.0025} {
		pred, err := calibrated.Predict(rate)
		if err != nil {
			t.AddRow(rate, "saturated", "-", "-", "-")
			continue
		}
		t.AddRow(rate, pred.Latency, pred.BlockingProb, pred.MeanStretch, pred.SourceWait)
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n(one simulation calibrated the model; every other row is closed-form)")
}
