// Comparison runs every routing algorithm at a medium load on a
// fault-free and a 10%-faulty 10×10 mesh and prints a side-by-side
// table — a miniature of the paper's Figures 4 and 5.
package main

import (
	"fmt"
	"log"
	"os"

	"wormmesh"
	"wormmesh/internal/report"
)

func main() {
	base := wormmesh.DefaultParams()
	base.Rate = 0.003
	base.WarmupCycles = 3000
	base.MeasureCycles = 9000

	var points []wormmesh.SweepPoint
	for _, alg := range wormmesh.Algorithms() {
		for _, faults := range []int{0, 10} {
			p := base
			p.Algorithm = alg
			p.Faults = faults
			points = append(points, wormmesh.SweepPoint{
				Key:    fmt.Sprintf("%s/%d", alg, faults),
				Params: p,
			})
		}
	}
	fmt.Printf("running %d simulations in parallel...\n\n", len(points))
	outcomes := wormmesh.RunBatch(points, 0)

	t := report.NewTable("algorithm", "faults", "latency", "throughput", "normalized", "detour", "killed")
	for _, o := range outcomes {
		if o.Err != nil {
			log.Fatal(o.Err)
		}
		st := o.Result.Stats
		t.AddRow(o.Result.Params.Algorithm, o.Result.Params.Faults,
			st.AvgLatency(), st.Throughput(), o.Result.NormalizedThroughput(),
			st.AvgDetour(), st.Killed)
	}
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlatency in cycles; throughput in flits/node/cycle;")
	fmt.Println("normalized = fraction of fault-free bisection capacity.")
}
