// Quickstart: simulate one algorithm on the paper's 10×10 mesh, with
// and without faults, and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"wormmesh"
)

func main() {
	p := wormmesh.DefaultParams()
	p.Algorithm = "Duato-Nbc"
	p.Rate = 0.002 // messages per node per cycle
	p.WarmupCycles = 5000
	p.MeasureCycles = 15000

	fmt.Println("fault-free 10x10 mesh, Duato-Nbc, uniform traffic:")
	res, err := wormmesh.Run(p)
	if err != nil {
		log.Fatal(err)
	}
	show(res)

	p.Faults = 10 // 10% of the mesh
	fmt.Println("\nsame configuration with 10% random node faults:")
	res, err = wormmesh.Run(p)
	if err != nil {
		log.Fatal(err)
	}
	show(res)
}

func show(res wormmesh.Result) {
	st := res.Stats
	fmt.Printf("  delivered %d of %d messages\n", st.Delivered, st.Generated)
	fmt.Printf("  average latency    %.1f cycles (max %d)\n", st.AvgLatency(), st.LatencyMax)
	fmt.Printf("  throughput         %.4f flits/node/cycle (%.3f normalized)\n",
		st.Throughput(), res.NormalizedThroughput())
	fmt.Printf("  average detour     %.2f extra hops\n", st.AvgDetour())
	if res.FaultCount > 0 {
		fmt.Printf("  fault pattern      %d faulty nodes in %d block regions, %d f-ring nodes\n",
			res.FaultCount, res.Regions, res.RingNodes)
	}
}
