// Faultrouting walks single messages through a faulty mesh with the
// Boppana–Chalasani scheme and prints each hop, showing how a message
// blocked by a block fault region detours around the f-ring and
// resumes minimal routing. No congestion is involved: the example
// drives the routing algorithm directly, always taking its first
// preference.
package main

import (
	"fmt"
	"log"

	"wormmesh/internal/core"
	"wormmesh/internal/fault"
	"wormmesh/internal/routing"
	"wormmesh/internal/topology"
)

func main() {
	mesh := topology.New(10, 10)
	// A 3-wide, 2-high block fault region in the middle of the mesh.
	var failed []topology.NodeID
	for y := 4; y <= 5; y++ {
		for x := 3; x <= 5; x++ {
			failed = append(failed, mesh.ID(topology.Coord{X: x, Y: y}))
		}
	}
	model, err := fault.New(mesh, failed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault region %v; f-ring of %d nodes\n\n", model.Regions()[0], model.Rings()[0].Len())

	for _, tc := range []struct {
		alg      string
		src, dst topology.Coord
	}{
		{"NHop", topology.Coord{X: 0, Y: 4}, topology.Coord{X: 9, Y: 4}}, // straight through the region
		{"Pbc", topology.Coord{X: 4, Y: 0}, topology.Coord{X: 4, Y: 9}},  // straight up through it
		{"Duato-Nbc", topology.Coord{X: 0, Y: 5}, topology.Coord{X: 9, Y: 5}},
	} {
		walk(mesh, model, tc.alg, tc.src, tc.dst)
	}
}

// walk traces the path a lone message takes: at every node it asks the
// algorithm for candidates and follows the first channel of the best
// tier (an uncontended network always grants it).
func walk(mesh topology.Topology, model *fault.Model, algName string, src, dst topology.Coord) {
	alg, err := routing.New(algName, model, 24)
	if err != nil {
		log.Fatal(err)
	}
	m := core.NewMessage(1, mesh.ID(src), mesh.ID(dst), 1)
	alg.InitMessage(m)

	fmt.Printf("%s: %v -> %v (class %v, minimal distance %d)\n", algName, src, dst, m.DirClass, mesh.Distance(src, dst))
	cur := m.Src
	var cands core.CandidateSet
	for steps := 0; cur != m.Dst; steps++ {
		if steps > 4*mesh.Diameter() {
			log.Fatalf("%s: no progress after %d hops", algName, steps)
		}
		cands.Reset()
		alg.Candidates(m, cur, &cands)
		var ch core.Channel
		found := false
		for t := 0; t < core.MaxTiers && !found; t++ {
			if tier := cands.Tier(t); len(tier) > 0 {
				ch = tier[0]
				found = true
			}
		}
		if !found {
			log.Fatalf("%s: stuck at %v", algName, mesh.CoordOf(cur))
		}
		alg.Advance(m, cur, ch)
		next := mesh.NeighborID(cur, ch.Dir)
		tag := ""
		if m.RingIdx >= 0 {
			tag = "  [on f-ring]"
		}
		fmt.Printf("  hop %2d: %v --%v/vc%d--> %v%s\n",
			m.Hops, mesh.CoordOf(cur), ch.Dir, ch.VC, mesh.CoordOf(next), tag)
		cur = next
	}
	fmt.Printf("  arrived in %d hops (%d beyond minimal)\n\n",
		m.Hops, int(m.Hops)-mesh.Distance(src, dst))
}
