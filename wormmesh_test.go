package wormmesh_test

import (
	"testing"

	"wormmesh"
)

func TestFacadeQuickRun(t *testing.T) {
	p := wormmesh.DefaultParams()
	p.Algorithm = "Duato-Nbc"
	p.Rate = 0.002
	p.Faults = 5
	p.WarmupCycles = 300
	p.MeasureCycles = 1500
	res, err := wormmesh.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.NormalizedThroughput() <= 0 {
		t.Error("normalized throughput zero")
	}
}

func TestFacadeAlgorithmsList(t *testing.T) {
	algs := wormmesh.Algorithms()
	if len(algs) != 11 {
		t.Fatalf("algorithms = %d, want 11", len(algs))
	}
	for _, a := range algs {
		if wormmesh.DescribeAlgorithm(a) == "" {
			t.Errorf("%s has no description", a)
		}
	}
	// The returned slice is a copy.
	algs[0] = "mutated"
	if wormmesh.Algorithms()[0] == "mutated" {
		t.Error("Algorithms returned shared slice")
	}
}

func TestFacadeFaultHelpers(t *testing.T) {
	m := wormmesh.NewMesh(8, 8)
	f, err := wormmesh.NewFaultModel(m, []wormmesh.NodeID{27, 28})
	if err != nil {
		t.Fatal(err)
	}
	if f.FaultCount() != 2 {
		t.Errorf("FaultCount = %d", f.FaultCount())
	}
	g, err := wormmesh.GenerateFaults(m, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.SeedCount() != 4 {
		t.Errorf("SeedCount = %d", g.SeedCount())
	}
}

func TestFacadeRunBatch(t *testing.T) {
	base := wormmesh.DefaultParams()
	base.Rate = 0.001
	base.WarmupCycles = 200
	base.MeasureCycles = 800
	var points []wormmesh.SweepPoint
	for _, alg := range []string{"Duato", "NHop"} {
		p := base
		p.Algorithm = alg
		points = append(points, wormmesh.SweepPoint{Key: alg, Params: p})
	}
	outcomes := wormmesh.RunBatch(points, 2)
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		if o.Result.Stats.Delivered == 0 {
			t.Errorf("%s delivered nothing", o.Point.Key)
		}
	}
}

func TestExperimentOptionsExposed(t *testing.T) {
	if wormmesh.PaperExperiments().MeasureCycles != 20000 {
		t.Error("paper options wrong")
	}
	if wormmesh.QuickExperiments().MeasureCycles >= 20000 {
		t.Error("quick options not reduced")
	}
}
