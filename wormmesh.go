// Package wormmesh is a flit-level simulator of wormhole-switched 2-D
// mesh interconnect networks with adaptive fault-tolerant routing. It
// reproduces the comparative study of Safaei et al., "Evaluating the
// Performance of Adaptive Fault-Tolerant Routing Algorithms for
// Wormhole-Switched Mesh Interconnect Networks" (IPPS 2007): ten
// adaptive routing algorithms fortified with the Boppana–Chalasani
// f-ring scheme, evaluated on a 10×10 mesh with up to 10% node
// failures.
//
// The root package is a thin facade over the implementation packages:
//
//   - internal/topology — mesh coordinates and direction math
//   - internal/fault    — block fault regions, f-rings, labeling
//   - internal/core     — the wormhole-switching engine
//   - internal/routing  — the ten algorithms + the BC scheme
//   - internal/traffic  — workload generation
//   - internal/sim      — single-run driver and derived metrics
//   - internal/sweep    — parallel experiment harness
//   - internal/experiments — the paper's six figures as code
//
// Quick start:
//
//	p := wormmesh.DefaultParams()
//	p.Algorithm = "Duato-Nbc"
//	p.Rate = 0.002      // messages per node per cycle
//	p.Faults = 5        // 5% of a 10x10 mesh
//	res, err := wormmesh.Run(p)
//	if err != nil { ... }
//	fmt.Println(res.Stats.AvgLatency(), res.Stats.Throughput())
package wormmesh

import (
	"math/rand"

	"wormmesh/internal/core"
	"wormmesh/internal/experiments"
	"wormmesh/internal/fault"
	"wormmesh/internal/report"
	"wormmesh/internal/routing"
	"wormmesh/internal/sim"
	"wormmesh/internal/sweep"
	"wormmesh/internal/topology"
)

// Params configures one simulation run. See sim.Params for the field
// documentation.
type Params = sim.Params

// Result is a finished simulation with its measured statistics.
type Result = sim.Result

// Stats is the engine's measurement record for one window.
type Stats = core.Stats

// Config holds the router micro-architecture knobs.
type Config = core.Config

// Topology is the geometry contract a network backend satisfies; Mesh
// and Torus implement it.
type Topology = topology.Topology

// Mesh is a 2-D mesh topology (the paper's).
type Mesh = topology.Mesh

// Torus is a 2-D torus topology: the mesh plus wrap-around links.
type Torus = topology.Torus

// Coord addresses a mesh node.
type Coord = topology.Coord

// NodeID is a dense node identifier.
type NodeID = topology.NodeID

// FaultModel is an immutable fault pattern with its block regions and
// f-rings.
type FaultModel = fault.Model

// ExperimentOptions scales the figure-reproduction experiments.
type ExperimentOptions = experiments.Options

// SweepPoint and SweepOutcome drive batch simulation.
type (
	SweepPoint   = sweep.Point
	SweepOutcome = sweep.Outcome
)

// LinkMetric selects a per-link telemetry counter for reporting
// (Result.LinkView, Result.RingSplit); collection is gated by
// Config.ChannelTelemetry.
type LinkMetric = sim.LinkMetric

// The three per-link counters.
const (
	LinkFlits   = sim.LinkFlits
	LinkBusy    = sim.LinkBusy
	LinkBlocked = sim.LinkBlocked
)

// ParseLinkMetric maps "flits"|"busy"|"blocked" to a LinkMetric.
func ParseLinkMetric(s string) (LinkMetric, error) { return sim.ParseLinkMetric(s) }

// LatencyAnatomy renders a run's latency decomposition: mean cycles and
// share per component plus histogram percentiles.
func LatencyAnatomy(st Stats) *report.Table { return sim.LatencyAnatomy(st) }

// DefaultParams returns the paper's baseline configuration (10×10
// mesh, 100-flit messages, 24 VCs per physical channel, 30k cycles
// with 10k warm-up).
func DefaultParams() Params { return sim.DefaultParams() }

// Run executes one simulation.
func Run(p Params) (Result, error) { return sim.Run(p) }

// RunBatch executes many simulations on a worker pool and returns the
// outcomes in input order.
func RunBatch(points []SweepPoint, workers int) []SweepOutcome {
	return sweep.Run(points, workers, nil)
}

// Algorithms lists the eleven evaluated routing configurations in the
// paper's order.
func Algorithms() []string {
	return append([]string(nil), routing.AlgorithmNames...)
}

// DescribeAlgorithm returns a one-line description of an algorithm.
func DescribeAlgorithm(name string) string { return routing.Describe(name) }

// MinVCs returns the smallest virtual-channel count the named
// algorithm supports on a topology (hop-based class ladders grow with
// the diameter).
func MinVCs(name string, t Topology) (int, error) { return routing.MinVCs(name, t) }

// NewMesh builds a width×height mesh.
func NewMesh(width, height int) Mesh { return topology.New(width, height) }

// NewTorus builds a width×height torus.
func NewTorus(width, height int) Torus { return topology.NewTorus(width, height) }

// NewTopology builds the named topology backend ("mesh" or "torus";
// empty selects the mesh).
func NewTopology(kind string, width, height int) (Topology, error) {
	return topology.Make(kind, width, height)
}

// SupportsTopology reports whether the named algorithm's fortification
// is enabled (deadlock-free) on the given topology; the returned error
// explains a rejection.
func SupportsTopology(name string, t Topology) error {
	return routing.SupportsTopology(name, t)
}

// NewFaultModel builds a fault model from explicit failed nodes,
// coalescing them into block regions and constructing f-rings. It
// fails if the pattern disconnects the healthy nodes.
func NewFaultModel(t Topology, failed []NodeID) (*FaultModel, error) {
	return fault.New(t, failed)
}

// GenerateFaults draws a random connected fault pattern with the given
// number of failed nodes.
func GenerateFaults(t Topology, count int, seed int64) (*FaultModel, error) {
	return fault.Generate(t, count, rand.New(rand.NewSource(seed)), fault.Options{})
}

// PaperExperiments returns publication-scale experiment options;
// QuickExperiments a CI-scale variant.
func PaperExperiments() ExperimentOptions { return experiments.Paper() }

// QuickExperiments returns reduced-cycle experiment options.
func QuickExperiments() ExperimentOptions { return experiments.Quick() }
